//! The `Clock` trait: wall time and deterministic virtual time behind one
//! seam.
//!
//! Timestamps are plain [`Duration`]s since the clock's epoch (its
//! construction, for a [`WallClock`]; zero, for a [`VirtualClock`]).
//! Using `Duration` instead of [`std::time::Instant`] is what makes a
//! virtual implementation possible at all — `Instant`s cannot be
//! fabricated — while keeping all the arithmetic (`+`, `saturating_sub`,
//! comparisons) that deadline code needs.
//!
//! Components take an `Arc<dyn Clock>` (aliased [`SharedClock`]) and call
//! [`Clock::now`] for stamps and [`Clock::sleep`] for backoff. Under a
//! [`VirtualClock`] a sleep *advances simulated time and yields* instead
//! of parking the thread, so a poll loop that would wait out a 145 s
//! stall in real time spins through it in microseconds — which is the
//! whole point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shorthand for the shared trait-object form every component stores.
pub type SharedClock = Arc<dyn Clock>;

/// A monotonic time source.
///
/// Implementations must be cheap to query and safe to share across
/// threads; all the serve/faultsim poll loops hit `now` on every
/// iteration.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Give up the CPU for (at least) `d` of *this clock's* time. A
    /// [`WallClock`] parks the thread; a [`VirtualClock`] advances its
    /// simulated time and only yields the scheduler slice.
    fn sleep(&self, d: Duration);

    /// Convenience: time elapsed since an earlier [`now`](Clock::now)
    /// stamp (saturating, so a racing reader never underflows).
    fn since(&self, earlier: Duration) -> Duration {
        self.now().saturating_sub(earlier)
    }

    /// Whether this timeline is simulated. A virtual timeline only moves
    /// when someone sleeps *on it*, so code that would otherwise park the
    /// OS thread (an `epoll_wait`, say) must poll-and-nap on the clock
    /// instead — see [`reactor::make_reactor`](crate::reactor::make_reactor).
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Real time: [`Clock::now`] is `Instant` elapsed since construction,
/// [`Clock::sleep`] is [`std::thread::sleep`].
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock { epoch: Instant::now() }
    }

    /// A ready-to-share `Arc<dyn Clock>` wall clock.
    pub fn shared() -> SharedClock {
        Arc::new(WallClock::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic, manually-advanced simulated time.
///
/// Cloning shares the underlying time cell, so one `VirtualClock` can be
/// handed (via [`handle`](VirtualClock::handle)) to a server, a proxy and
/// a test driver, all observing the same timeline.
///
/// Two ways time moves:
///
/// * [`advance`](VirtualClock::advance) — explicit, from a test driver.
/// * [`sleep`](Clock::sleep) — a component that would have parked for `d`
///   instead advances the shared time by `max(d, min_step)` and yields.
///   `min_step` (default zero: advance by exactly `d`) lets tests of
///   poll loops with microsecond backoffs fast-forward hour-scale idle
///   deadlines in a few thousand iterations instead of millions, without
///   the loops themselves knowing the clock is fake.
///
/// Monotonic by construction: time only ever increases, and concurrent
/// sleepers each atomically bump the shared counter.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
    min_step_ns: u64,
}

impl VirtualClock {
    /// A virtual clock at time zero whose sleeps advance by exactly the
    /// requested duration.
    pub fn new() -> VirtualClock {
        VirtualClock { ns: Arc::new(AtomicU64::new(0)), min_step_ns: 0 }
    }

    /// A virtual clock whose sleeps advance by at least `step` — the
    /// accelerator for poll loops with tiny fixed backoffs (see type
    /// docs). Shares no state with other clocks.
    pub fn with_min_step(step: Duration) -> VirtualClock {
        VirtualClock { ns: Arc::new(AtomicU64::new(0)), min_step_ns: duration_to_ns(step) }
    }

    /// A ready-to-share `Arc<dyn Clock>` view of this clock (sharing the
    /// same timeline — keep a clone to advance or read it).
    pub fn handle(&self) -> SharedClock {
        Arc::new(self.clone())
    }

    /// Advance simulated time by `d` (saturating at the u64 nanosecond
    /// horizon, ~584 years).
    pub fn advance(&self, d: Duration) {
        saturating_bump(&self.ns, duration_to_ns(d));
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.ns.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        let step = duration_to_ns(d).max(self.min_step_ns);
        saturating_bump(&self.ns, step);
        // Let any thread this sleep was politely waiting on actually run;
        // virtual sleeps must not turn poll loops into pure spin.
        std::thread::yield_now();
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

/// CPU time this process has consumed so far (user + system), or `None`
/// where the platform offers no cheap way to ask. Used by the
/// mass-connection benchmark to price a request — and an *idle*
/// connection — in CPU rather than wall time.
pub fn process_cpu_time() -> Option<Duration> {
    #[cfg(target_os = "linux")]
    {
        crate::sys::sys_process_cpu_time()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Clamp a `Duration` into u64 nanoseconds (saturating).
fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// `fetch_add` that saturates instead of wrapping around the epoch.
fn saturating_bump(cell: &AtomicU64, delta: u64) {
    let mut cur = cell.load(Ordering::SeqCst);
    loop {
        let next = cur.saturating_add(delta);
        match cell.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_sleeps() {
        let c = WallClock::new();
        let t0 = c.now();
        c.sleep(Duration::from_millis(2));
        let t1 = c.now();
        assert!(t1 >= t0 + Duration::from_millis(2), "{t0:?} -> {t1:?}");
        assert!(c.since(t0) >= Duration::from_millis(2));
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_advances_manually() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(145));
        assert_eq!(c.now(), Duration::from_secs(145));
        // No wall time was spent simulating 145 s.
    }

    #[test]
    fn virtual_sleep_advances_exactly_without_min_step() {
        let c = VirtualClock::new();
        c.sleep(Duration::from_micros(500));
        assert_eq!(c.now(), Duration::from_micros(500));
        c.sleep(Duration::from_secs(200));
        assert_eq!(c.now(), Duration::from_secs(200) + Duration::from_micros(500));
    }

    #[test]
    fn min_step_accelerates_small_sleeps_only() {
        let c = VirtualClock::with_min_step(Duration::from_millis(100));
        c.sleep(Duration::from_micros(500));
        assert_eq!(c.now(), Duration::from_millis(100), "small sleeps round up to the step");
        c.sleep(Duration::from_secs(3));
        assert_eq!(
            c.now(),
            Duration::from_millis(100) + Duration::from_secs(3),
            "large sleeps advance by the full request"
        );
    }

    #[test]
    fn clones_share_one_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        let h = a.handle();
        a.advance(Duration::from_secs(1));
        b.advance(Duration::from_secs(2));
        assert_eq!(a.now(), Duration::from_secs(3));
        assert_eq!(h.now(), Duration::from_secs(3));
    }

    #[test]
    fn concurrent_sleepers_never_lose_time() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.sleep(Duration::from_nanos(3));
                    }
                });
            }
        });
        assert_eq!(c.now(), Duration::from_nanos(3 * 4 * 1000));
    }

    #[test]
    fn virtual_time_saturates_at_the_horizon() {
        let c = VirtualClock::new();
        c.advance(Duration::from_nanos(u64::MAX - 10));
        c.advance(Duration::from_secs(100));
        assert_eq!(c.now(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn since_saturates() {
        let c = VirtualClock::new();
        c.advance(Duration::from_secs(5));
        let later = Duration::from_secs(10);
        assert_eq!(c.since(later), Duration::ZERO);
    }
}
