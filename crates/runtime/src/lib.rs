//! # beware-runtime
//!
//! The runtime substrate every layer above the simulator shares: **one
//! clock, one RNG, one deadline scheduler**.
//!
//! The paper's central finding is that realistic timeouts stretch to
//! 5–145 s. Code that handles such timeouts can only be tested honestly
//! if time itself is an injectable dependency — otherwise every test of a
//! 145 s stall costs 145 s of wall clock, so the tests are never written
//! and the timeout logic goes unexercised (exactly the failure mode
//! Jain's divergence analysis warns about). This crate supplies the three
//! seams that make the serving and chaos layers time-testable:
//!
//! * [`Clock`] — a monotonic time source with two implementations:
//!   [`WallClock`] (thin wrapper over [`std::time::Instant`]) and
//!   [`VirtualClock`], a deterministic, manually-advanced clock whose
//!   `sleep` advances simulated time instead of parking the thread. A
//!   seeded fault schedule spanning simulated minutes replays in
//!   milliseconds under it.
//! * [`rng`] — the canonical SplitMix64 stream generator and
//!   seed-derivation finalizer. This is the **only** implementation in
//!   the workspace; `beware-netsim`, `beware-faultsim` and
//!   `beware-serve` all re-export or delegate to it, with equivalence
//!   tests pinning the streams to the retired private copies.
//! * [`DeadlineWheel`] — a binary-heap deadline scheduler with lazy
//!   cancellation, shared by the oracle server's shard loop (idle
//!   eviction) and the chaos proxy (deferred delayed chunks), replacing
//!   their ad-hoc `last_active` / inline-sleep deadline math.
//! * [`reactor`] — readiness-driven I/O: a minimal epoll reactor (with
//!   its own `extern "C"` glibc bindings — the build is hermetic, so no
//!   `mio`/`libc`) plus a clock-paced polling fallback behind one
//!   [`Reactor`] trait, so the serve path blocks on *I/O or the next
//!   wheel deadline* instead of napping on a fixed interval.
//! * [`Slot`] — the epoch-swapped publication slot behind zero-downtime
//!   state swaps: writers publish an immutable `Arc`, per-shard
//!   [`SlotReader`]s see it with a single acquire load. The serve path
//!   uses it for oracle snapshots, the policy subsystem for published
//!   estimator tables.
//!
//! Determinism contract: under a [`VirtualClock`] every timestamp a
//! component observes is a pure function of its inputs and seeds — no
//! kernel scheduling, no wall time. See DESIGN.md §10.
//!
//! Unsafe policy (DESIGN.md §11): this crate is `#![deny(unsafe_code)]`
//! with a single `#[allow]` on the private `sys` module, whose safe
//! wrappers are the only FFI surface in the workspace; every other crate
//! keeps `#![forbid(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod reactor;
pub mod rng;
pub mod swap;
#[cfg(target_os = "linux")]
mod sys;
pub mod wheel;

pub use clock::{process_cpu_time, Clock, SharedClock, VirtualClock, WallClock};
#[cfg(target_os = "linux")]
pub use reactor::EpollReactor;
pub use reactor::{
    make_reactor, round_wait_up_to_ms, Event, Interest, PollReactor, Reactor, ReactorKind,
    StopSignal, Waker,
};
pub use rng::{derive_seed, unit_hash, SplitMix64};
pub use swap::{Slot, SlotReader};
pub use wheel::DeadlineWheel;
