//! Readiness-driven I/O: a minimal epoll reactor with a clock-paced
//! polling fallback.
//!
//! The serve path used to spin-poll every nonblocking connection under a
//! read budget with fixed 2 ms naps — fine at hundreds of connections,
//! ruinous at 100k+ where an idle connection must cost ~zero CPU. A
//! [`Reactor`] inverts that: the caller registers file descriptors with
//! an [`Interest`] and then **blocks** in [`Reactor::wait`] until the
//! kernel reports readiness, another thread rings a [`Waker`], or a
//! caller-supplied timeout (derived from a
//! [`DeadlineWheel`](crate::DeadlineWheel) next-deadline) elapses.
//!
//! Two implementations, one contract:
//!
//! * [`EpollReactor`] (Linux) — real readiness from `epoll_wait`, with
//!   eventfd doorbells for cross-thread wakeups. The handful of glibc
//!   symbols it needs are declared in the crate's one unsafe module
//!   (`sys`); everything here is safe code.
//! * [`PollReactor`] — the retired budgeted poll loop, packaged behind
//!   the same trait: `wait` naps one bounded step on the injected
//!   [`Clock`](crate::Clock) and then reports every registration as
//!   ready ("assume-ready"). Under a
//!   [`VirtualClock`](crate::VirtualClock) those naps *advance simulated
//!   time*, which is exactly what the virtual-time suites need — an
//!   epoll reactor would park the OS thread on a timeline that never
//!   moves on its own.
//!
//! [`make_reactor`] picks between them: an explicit [`ReactorKind`], or
//! `Auto` — epoll for real time, the polling fallback whenever the clock
//! is virtual (see [`Clock::is_virtual`](crate::Clock::is_virtual)) or
//! epoll is unavailable.

use crate::clock::SharedClock;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(target_os = "linux")]
use crate::sys;

/// What a registration wants to hear about. Plain bitset semantics:
/// combine with [`Interest::and`], query with the accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// No events (keep the fd registered but silent).
    pub const NONE: Interest = Interest(0);
    /// Readable (and peer-hangup) events.
    pub const READABLE: Interest = Interest(1);
    /// Writable events.
    pub const WRITABLE: Interest = Interest(2);
    /// Readable and writable.
    pub const BOTH: Interest = Interest(3);

    const EDGE: u8 = 4;

    /// Union of two interests.
    pub fn and(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Edge-triggered variant: report a readiness *transition* once
    /// instead of re-reporting while the condition holds. The epoll
    /// reactor maps this to `EPOLLET`; the polling fallback has no
    /// readiness signal to edge on and ignores it.
    pub fn edge(self) -> Interest {
        Interest(self.0 | Interest::EDGE)
    }

    /// Whether readable events are wanted.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether writable events are wanted.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether the registration is edge-triggered.
    pub fn is_edge(self) -> bool {
        self.0 & Interest::EDGE != 0
    }
}

/// One readiness report from [`Reactor::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd (or waker) was registered with.
    pub token: u64,
    /// Reading will not block (includes error/hangup conditions, which
    /// surface through the next `read`).
    pub readable: bool,
    /// Writing will not block (includes error conditions).
    pub writable: bool,
    /// The peer hung up.
    pub hangup: bool,
}

/// A cross-thread doorbell that interrupts [`Reactor::wait`].
///
/// On Linux the waker owns an eventfd the epoll reactor registers like
/// any other fd; everywhere (and for the polling fallback) it also keeps
/// an atomic flag, so a wake is never lost even when no reactor is
/// watching the fd. Waking is idempotent and cheap; the flag (and
/// eventfd counter) reset when the wake is delivered.
#[derive(Debug)]
pub struct Waker {
    flag: AtomicBool,
    #[cfg(target_os = "linux")]
    efd: RawFd,
}

impl Waker {
    /// A fresh doorbell.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            flag: AtomicBool::new(false),
            #[cfg(target_os = "linux")]
            efd: sys::sys_eventfd()?,
        })
    }

    /// Ring: any in-flight or future [`Reactor::wait`] watching this
    /// waker returns (with the waker's token among the events).
    pub fn wake(&self) {
        self.flag.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        sys::sys_eventfd_signal(self.efd);
    }

    /// Consume a pending wake, if any.
    fn take(&self) -> bool {
        let was = self.flag.swap(false, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if was {
            sys::sys_eventfd_drain(self.efd);
        }
        was
    }
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.efd);
    }
}

/// A stop flag fused to a set of wakers: one `request_stop` both raises
/// the flag and rings every subscribed doorbell, so threads blocked in
/// [`Reactor::wait`] observe the stop promptly instead of at their next
/// timeout. This is how `ServerHandle::shutdown` (or a `Shutdown` frame
/// handled on one shard) reaches every other shard and the acceptor.
#[derive(Debug, Default)]
pub struct StopSignal {
    stopped: AtomicBool,
    wakers: Mutex<Vec<Arc<Waker>>>,
}

impl StopSignal {
    /// A fresh, un-stopped signal.
    pub fn new() -> StopSignal {
        StopSignal::default()
    }

    /// Add a doorbell to ring on stop. (If the stop already happened,
    /// ring it immediately — late subscribers must not block forever.)
    pub fn subscribe(&self, waker: Arc<Waker>) {
        if self.is_stopped() {
            waker.wake();
        }
        self.wakers.lock().expect("stop signal lock").push(waker);
    }

    /// Raise the flag and ring every subscribed waker.
    pub fn request_stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        for w in self.wakers.lock().expect("stop signal lock").iter() {
            w.wake();
        }
    }

    /// Whether stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

/// A readiness source: register fds by token, block in [`wait`] until
/// something is ready, a [`Waker`] rings, or the timeout passes.
///
/// The timeout contract is the wheel⇄reactor seam (DESIGN.md §11): the
/// caller derives `timeout` as `DeadlineWheel::next_deadline()` minus
/// `clock.now()`, so a shard sleeps **exactly** until either I/O or
/// the next deadline it owns — never on a fixed nap.
///
/// [`wait`]: Reactor::wait
pub trait Reactor: Send + std::fmt::Debug {
    /// Start watching `fd` under `token` with `interest`.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Change an existing registration's token/interest.
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Pending events for it are dropped.
    fn deregister(&mut self, fd: RawFd, token: u64) -> io::Result<()>;

    /// Watch a [`Waker`] under `token`; its wakes surface as events.
    fn add_waker(&mut self, waker: Arc<Waker>, token: u64) -> io::Result<()>;

    /// Block until readiness, a wake, or `timeout` (`None` = forever).
    /// `events` is cleared and refilled; an empty result means the
    /// timeout (or a signal) ended the wait.
    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()>;
}

/// Round a wheel-derived wait gap **up** to whole milliseconds — the
/// wheel⇄reactor conversion of DESIGN.md §11.
///
/// Epoll's native timeout granularity is one millisecond, so any
/// conversion that truncates turns a sub-millisecond gap (deadline a few
/// hundred µs out) into a zero timeout: `wait` returns immediately, the
/// wheel pops nothing because the deadline has not passed, and the shard
/// busy-spins until it does. Rounding up instead wakes at most one
/// millisecond *after* the deadline — harmless, the wheel pop is
/// idempotent on "due now or earlier" — and never before it. Callers
/// converting `DeadlineWheel::next_deadline() - clock.now()` into a
/// [`Reactor::wait`] timeout must route through this; a zero gap stays
/// zero (the deadline is already due, an immediate return makes
/// progress).
pub fn round_wait_up_to_ms(gap: Duration) -> Duration {
    Duration::from_millis(u64::try_from(gap.as_nanos().div_ceil(1_000_000)).unwrap_or(u64::MAX))
}

/// Which reactor [`make_reactor`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorKind {
    /// Epoll for wall clocks on Linux; the polling fallback for virtual
    /// clocks or platforms without epoll.
    #[default]
    Auto,
    /// Force epoll (errors off-Linux).
    Epoll,
    /// Force the clock-paced polling fallback.
    Poll,
}

/// Build a reactor of `kind` for code paced by `clock`.
pub fn make_reactor(kind: ReactorKind, clock: &SharedClock) -> io::Result<Box<dyn Reactor>> {
    match kind {
        ReactorKind::Poll => Ok(Box::new(PollReactor::new(Arc::clone(clock)))),
        ReactorKind::Epoll => {
            #[cfg(target_os = "linux")]
            {
                Ok(Box::new(EpollReactor::new()?))
            }
            #[cfg(not(target_os = "linux"))]
            {
                Err(io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux"))
            }
        }
        ReactorKind::Auto => {
            // A virtual timeline only moves when someone sleeps on the
            // injected clock — parking the OS thread in epoll_wait would
            // deadlock simulated time, so Auto refuses to.
            if clock.is_virtual() {
                return Ok(Box::new(PollReactor::new(Arc::clone(clock))));
            }
            #[cfg(target_os = "linux")]
            {
                match EpollReactor::new() {
                    Ok(r) => Ok(Box::new(r)),
                    Err(_) => Ok(Box::new(PollReactor::new(Arc::clone(clock)))),
                }
            }
            #[cfg(not(target_os = "linux"))]
            {
                Ok(Box::new(PollReactor::new(Arc::clone(clock))))
            }
        }
    }
}

/// Real readiness from `epoll` (Linux only; see the crate's `sys`
/// module for the FFI surface and DESIGN.md §11 for the unsafe policy).
/// Level-triggered by default — unconsumed input re-reports on the next
/// [`wait`](Reactor::wait), which is what makes per-connection read
/// budgets safe — with [`Interest::edge`] opting in to `EPOLLET`.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EpollReactor {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
    wakers: Vec<(u64, Arc<Waker>)>,
}

#[cfg(target_os = "linux")]
impl EpollReactor {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<EpollReactor> {
        Ok(EpollReactor {
            epfd: sys::sys_epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            wakers: Vec::new(),
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0u32;
        if interest.is_readable() {
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.is_writable() {
            m |= sys::EPOLLOUT;
        }
        if interest.is_edge() {
            m |= sys::EPOLLET;
        }
        m
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollReactor {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

#[cfg(target_os = "linux")]
impl Reactor for EpollReactor {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::mask(interest), token)
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::mask(interest), token)
    }

    fn deregister(&mut self, fd: RawFd, _token: u64) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn add_waker(&mut self, waker: Arc<Waker>, token: u64) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, waker.efd, sys::EPOLLIN, token)?;
        self.wakers.push((token, waker));
        Ok(())
    }

    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        // Round *up* to whole milliseconds so we never wake before the
        // caller's deadline and spin on a not-yet-due wheel.
        let timeout_ms = match timeout {
            None => -1,
            Some(t) => i32::try_from(t.as_nanos().div_ceil(1_000_000)).unwrap_or(i32::MAX),
        };
        let n = sys::sys_epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
        for raw in &self.buf[..n] {
            let (mask, token) = (raw.events, raw.data);
            if let Some((_, w)) = self.wakers.iter().find(|(t, _)| *t == token) {
                w.take(); // drain the eventfd + flag
                events.push(Event { token, readable: false, writable: false, hangup: false });
                continue;
            }
            events.push(Event {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

/// The retired budgeted poll loop behind the [`Reactor`] trait: naps one
/// bounded step on the injected clock, then reports **every**
/// registration as ready in registration order ("assume-ready" — the
/// caller's nonblocking reads/writes discover the truth, exactly as the
/// old spin loop did). Deterministic-time-compatible: under a
/// [`VirtualClock`](crate::VirtualClock) the naps advance the simulated
/// timeline, so wheel deadlines measured on it still fire.
#[derive(Debug)]
pub struct PollReactor {
    clock: SharedClock,
    step: Duration,
    registered: Vec<(RawFd, u64, Interest)>,
    wakers: Vec<(u64, Arc<Waker>)>,
}

impl PollReactor {
    /// Default pacing step between poll rounds (the old shard loop's
    /// no-progress nap).
    pub const DEFAULT_STEP: Duration = Duration::from_micros(500);

    /// A polling reactor paced on `clock` with the default step.
    pub fn new(clock: SharedClock) -> PollReactor {
        PollReactor::with_step(clock, PollReactor::DEFAULT_STEP)
    }

    /// A polling reactor with an explicit pacing step.
    pub fn with_step(clock: SharedClock, step: Duration) -> PollReactor {
        PollReactor { clock, step, registered: Vec::new(), wakers: Vec::new() }
    }

    /// Collect pending wakes into `events`; true if any fired.
    fn take_wakes(&self, events: &mut Vec<Event>) -> bool {
        let mut any = false;
        for (token, w) in &self.wakers {
            if w.take() {
                events.push(Event {
                    token: *token,
                    readable: false,
                    writable: false,
                    hangup: false,
                });
                any = true;
            }
        }
        any
    }
}

impl Reactor for PollReactor {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.registered.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.registered.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.registered.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(slot) => {
                *slot = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd, _token: u64) -> io::Result<()> {
        let before = self.registered.len();
        self.registered.retain(|&(f, _, _)| f != fd);
        if self.registered.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn add_waker(&mut self, waker: Arc<Waker>, token: u64) -> io::Result<()> {
        self.wakers.push((token, waker));
        Ok(())
    }

    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        // A pending wake short-circuits the nap entirely.
        if self.take_wakes(events) {
            return Ok(());
        }
        let nap = timeout.map_or(self.step, |t| t.min(self.step));
        if !nap.is_zero() {
            self.clock.sleep(nap);
        }
        self.take_wakes(events);
        for &(_, token, interest) in &self.registered {
            if interest.is_readable() || interest.is_writable() {
                events.push(Event {
                    token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    hangup: false,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock, WallClock};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    /// A connected loopback pair (both ends blocking).
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nodelay(true).unwrap();
        b.set_nodelay(true).unwrap();
        (a, b)
    }

    fn events_for(events: &[Event], token: u64) -> Vec<Event> {
        events.iter().copied().filter(|e| e.token == token).collect()
    }

    #[test]
    fn sub_millisecond_gaps_round_up_never_down() {
        // The regression of record: a deadline 300 µs out must convert to
        // a ≥ 1 ms wait, not truncate to 0 and busy-spin.
        assert_eq!(round_wait_up_to_ms(Duration::from_micros(300)), Duration::from_millis(1));
        assert_eq!(round_wait_up_to_ms(Duration::ZERO), Duration::ZERO);
        assert_eq!(round_wait_up_to_ms(Duration::from_millis(4)), Duration::from_millis(4));
        assert_eq!(
            round_wait_up_to_ms(Duration::from_millis(4) + Duration::from_nanos(1)),
            Duration::from_millis(5)
        );
        assert_eq!(round_wait_up_to_ms(Duration::MAX), Duration::from_millis(u64::MAX));
    }

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::*;

        #[test]
        fn rounded_sub_ms_wait_does_not_wake_before_the_deadline() {
            // End-to-end over the seam: a wheel deadline 300 µs out, the
            // round-up conversion, a real epoll wait with nothing ready.
            // A truncating conversion returns in microseconds (the spin);
            // the contract requires sleeping past the deadline.
            let mut r = EpollReactor::new().unwrap();
            let mut events = Vec::new();
            let gap = Duration::from_micros(300);
            let start = Instant::now();
            r.wait(Some(round_wait_up_to_ms(gap)), &mut events).unwrap();
            assert!(events.is_empty());
            assert!(
                start.elapsed() >= gap,
                "woke {:?} into a {gap:?} gap — sub-ms truncation is back",
                start.elapsed()
            );
        }

        #[test]
        fn level_triggered_rereports_until_drained() {
            let (mut a, b) = tcp_pair();
            let mut r = EpollReactor::new().unwrap();
            r.register(b.as_raw_fd(), 7, Interest::READABLE).unwrap();
            a.write_all(b"hello").unwrap();

            let mut events = Vec::new();
            for round in 0..2 {
                r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
                let got = events_for(&events, 7);
                assert_eq!(got.len(), 1, "round {round}: {events:?}");
                assert!(got[0].readable, "round {round}: unread input must re-report (level)");
            }

            // Drain, then readiness must stop.
            let mut buf = [0u8; 16];
            let mut b2 = &b;
            assert_eq!(b2.read(&mut buf).unwrap(), 5);
            r.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
            assert!(events_for(&events, 7).is_empty(), "drained fd still reported: {events:?}");
        }

        #[test]
        fn edge_triggered_reports_once_per_burst() {
            let (mut a, b) = tcp_pair();
            let mut r = EpollReactor::new().unwrap();
            r.register(b.as_raw_fd(), 9, Interest::READABLE.edge()).unwrap();
            a.write_all(b"x").unwrap();

            let mut events = Vec::new();
            r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
            assert_eq!(events_for(&events, 9).len(), 1);
            // Nothing consumed, but no new burst: edge mode stays quiet.
            r.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
            assert!(events_for(&events, 9).is_empty(), "edge re-reported: {events:?}");
            // A fresh burst re-arms it.
            a.write_all(b"y").unwrap();
            r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
            assert_eq!(events_for(&events, 9).len(), 1);
        }

        #[test]
        fn deregister_while_armed_silences_the_fd() {
            // A pipe with data in flight is armed; deregistering must
            // drop it from every later wait.
            let (reader, mut writer) = std::io::pipe().unwrap();
            let mut r = EpollReactor::new().unwrap();
            r.register(reader.as_raw_fd(), 3, Interest::READABLE).unwrap();
            writer.write_all(b"armed").unwrap();

            let mut events = Vec::new();
            r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
            assert_eq!(events_for(&events, 3).len(), 1);

            r.deregister(reader.as_raw_fd(), 3).unwrap();
            r.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
            assert!(events.is_empty(), "deregistered fd still reported: {events:?}");
        }

        #[test]
        fn interest_flips_between_readable_and_writable() {
            let (a, b) = tcp_pair();
            let mut r = EpollReactor::new().unwrap();
            // A fresh socket with an empty send buffer is writable.
            r.register(b.as_raw_fd(), 5, Interest::WRITABLE).unwrap();
            let mut events = Vec::new();
            r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
            assert!(events_for(&events, 5)[0].writable);
            // Flip to readable-only: writability must stop reporting.
            r.reregister(b.as_raw_fd(), 5, Interest::READABLE).unwrap();
            r.wait(Some(Duration::from_millis(50)), &mut events).unwrap();
            assert!(events_for(&events, 5).is_empty(), "{events:?}");
            drop(a);
        }

        #[test]
        fn waker_unblocks_a_blocking_wait() {
            let mut r = EpollReactor::new().unwrap();
            let waker = Arc::new(Waker::new().unwrap());
            r.add_waker(Arc::clone(&waker), 42).unwrap();

            let ringer = Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                ringer.wake();
            });
            let t0 = Instant::now();
            let mut events = Vec::new();
            // No timeout: only the waker can end this wait.
            r.wait(None, &mut events).unwrap();
            assert_eq!(
                events,
                vec![Event { token: 42, readable: false, writable: false, hangup: false }]
            );
            assert!(t0.elapsed() < Duration::from_secs(5));
            t.join().unwrap();

            // The doorbell resets: the next wait times out quietly.
            r.wait(Some(Duration::from_millis(20)), &mut events).unwrap();
            assert!(events.is_empty(), "stale wake re-delivered: {events:?}");
        }

        #[test]
        fn peer_hangup_surfaces_as_readable() {
            let (a, b) = tcp_pair();
            let mut r = EpollReactor::new().unwrap();
            r.register(b.as_raw_fd(), 1, Interest::READABLE).unwrap();
            drop(a);
            let mut events = Vec::new();
            r.wait(Some(Duration::from_secs(2)), &mut events).unwrap();
            let got = events_for(&events, 1);
            assert_eq!(got.len(), 1);
            assert!(got[0].readable, "hangup must be readable so read() observes the EOF");
            assert!(got[0].hangup);
        }
    }

    #[test]
    fn poll_fallback_reports_registrations_and_paces_on_the_clock() {
        let vc = VirtualClock::new();
        let mut r = PollReactor::with_step(vc.handle(), Duration::from_millis(10));
        r.register(0, 11, Interest::READABLE).unwrap();
        r.register(1, 12, Interest::BOTH).unwrap();
        r.register(2, 13, Interest::NONE).unwrap();

        let mut events = Vec::new();
        r.wait(Some(Duration::from_secs(60)), &mut events).unwrap();
        assert_eq!(vc.now(), Duration::from_millis(10), "one pacing step of virtual time");
        assert_eq!(events.len(), 2, "NONE interest stays silent: {events:?}");
        assert!(events_for(&events, 11)[0].readable);
        let both = events_for(&events, 12)[0];
        assert!(both.readable && both.writable);

        // Timeouts below the step clamp the nap: a wheel deadline 2 ms
        // out must not be overslept by 10 ms.
        r.wait(Some(Duration::from_millis(2)), &mut events).unwrap();
        assert_eq!(vc.now(), Duration::from_millis(12));

        r.deregister(1, 12).unwrap();
        r.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events_for(&events, 12).is_empty(), "deregistered fd still reported");
    }

    #[test]
    fn poll_fallback_wake_short_circuits_the_nap() {
        let vc = VirtualClock::new();
        let mut r = PollReactor::with_step(vc.handle(), Duration::from_millis(10));
        let waker = Arc::new(Waker::new().unwrap());
        r.add_waker(Arc::clone(&waker), 99).unwrap();
        waker.wake();
        let mut events = Vec::new();
        r.wait(Some(Duration::from_secs(60)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 99);
        assert_eq!(vc.now(), Duration::ZERO, "a pending wake must skip the nap");
    }

    #[test]
    fn stop_signal_raises_flag_and_rings_every_subscriber() {
        let stop = StopSignal::new();
        let a = Arc::new(Waker::new().unwrap());
        let b = Arc::new(Waker::new().unwrap());
        stop.subscribe(Arc::clone(&a));
        stop.subscribe(Arc::clone(&b));
        assert!(!stop.is_stopped());
        assert!(!a.take() && !b.take());

        stop.request_stop();
        assert!(stop.is_stopped());
        assert!(a.take() && b.take());

        // Late subscribers get rung immediately.
        let c = Arc::new(Waker::new().unwrap());
        stop.subscribe(Arc::clone(&c));
        assert!(c.take());
    }

    #[test]
    fn auto_kind_respects_virtual_clocks() {
        let wall = WallClock::shared();
        let virt = VirtualClock::new().handle();
        let for_wall = make_reactor(ReactorKind::Auto, &wall).unwrap();
        let for_virt = make_reactor(ReactorKind::Auto, &virt).unwrap();
        let name = |r: &Box<dyn Reactor>| format!("{r:?}");
        #[cfg(target_os = "linux")]
        assert!(name(&for_wall).starts_with("EpollReactor"), "{for_wall:?}");
        #[cfg(not(target_os = "linux"))]
        assert!(name(&for_wall).starts_with("PollReactor"), "{for_wall:?}");
        assert!(
            name(&for_virt).starts_with("PollReactor"),
            "virtual time must never park in epoll: {for_virt:?}"
        );
    }
}
