//! The canonical SplitMix64 implementation and the workspace's
//! seed-derivation discipline.
//!
//! History: the same ~15 lines used to live, character for character, in
//! `beware_netsim::rng` (finalizer only), `beware_faultsim::rng` and a
//! private copy inside `beware_serve::loadgen` — three chances for the
//! constants to drift and silently break seed compatibility between
//! layers. This module is now the only implementation; every other crate
//! re-exports or delegates here, and the tests below pin the streams to
//! the retired copies bit for bit.
//!
//! The discipline (DESIGN.md §6, §10):
//!
//! * One root seed per run. Component `i` of a fan-out draws from
//!   [`derive_seed`]`(root, i)` — decorrelated child streams without any
//!   shared mutable RNG.
//! * Each decision point consumes **exactly one draw** regardless of the
//!   outcome ([`SplitMix64::coin`] at probability 0 still draws), so
//!   schedules stay aligned across configurations.

/// Derive a child seed from a parent seed and a stream index (SplitMix64
/// finalizer). Distinct streams of one parent are decorrelated; the same
/// `(parent, stream)` is always the same seed.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut x = parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic per-entity hash in `[0, 1)`, for density decisions
/// ("is this address a live host?") that must not consume RNG state.
pub fn unit_hash(parent: u64, entity: u64) -> f64 {
    (derive_seed(parent, entity) >> 11) as f64 / (1u64 << 53) as f64
}

/// A SplitMix64 stream. One instance per logical stream (connection,
/// worker, task); the draw *sequence* is a pure function of the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded directly (combine with [`derive_seed`] for child
    /// streams).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial. `p <= 0` never fires, `p >= 1` always fires; both
    /// edges still consume one draw so schedules stay aligned across
    /// configurations.
    pub fn coin(&mut self, p: f64) -> bool {
        let u = self.unit();
        p > 0.0 && (p >= 1.0 || u < p)
    }

    /// Uniform in `[1, n]`; `n == 0` yields 1 (still consumes a draw).
    pub fn one_to(&mut self, n: u64) -> u64 {
        let v = self.next_u64();
        if n == 0 {
            1
        } else {
            1 + v % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired `beware_faultsim::rng::SplitMix::next_u64` /
    /// `beware_serve::loadgen::splitmix64` step, reproduced verbatim so
    /// the canonical stream is pinned to the deleted copies bit for bit.
    fn legacy_step(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The retired `beware_faultsim::rng::derive_seed` /
    /// `beware_netsim::rng::derive_seed` finalizer, reproduced verbatim.
    fn legacy_derive(parent: u64, stream: u64) -> u64 {
        let mut x = parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    #[test]
    fn stream_matches_the_retired_copies() {
        for seed in [0u64, 1, 42, 0xbe0a_2e11, u64::MAX] {
            let mut canon = SplitMix64::new(seed);
            let mut legacy = seed;
            for i in 0..256 {
                assert_eq!(canon.next_u64(), legacy_step(&mut legacy), "seed {seed} draw {i}");
            }
        }
    }

    #[test]
    fn derive_matches_the_retired_copies() {
        for parent in [0u64, 7, 0x5ca3_9e44, u64::MAX] {
            for stream in [0u64, 1, 2, 1000, u64::MAX] {
                assert_eq!(derive_seed(parent, stream), legacy_derive(parent, stream));
            }
        }
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
    }

    #[test]
    fn known_answer_values_are_pinned() {
        // Frozen outputs: any change to the constants or the mixing order
        // fails here before it silently re-seeds the whole workspace.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(derive_seed(0, 0), 0);
        assert_eq!(derive_seed(42, 7), legacy_derive(42, 7));
    }

    #[test]
    fn streams_are_deterministic_and_aligned() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Edge-probability coins still consume exactly one draw.
        let mut c = SplitMix64::new(9);
        let mut d = SplitMix64::new(9);
        assert!(!c.coin(0.0));
        assert!(d.coin(1.0));
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn one_to_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.one_to(7);
            assert!((1..=7).contains(&v));
        }
        assert_eq!(r.one_to(0), 1);
    }

    #[test]
    fn unit_and_unit_hash_in_range() {
        let mut r = SplitMix64::new(5);
        for i in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let h = unit_hash(5, i);
            assert!((0.0..1.0).contains(&h));
        }
        assert_eq!(unit_hash(5, 3), unit_hash(5, 3));
    }
}
