//! Epoch-swapped publication slot: the primitive behind zero-downtime
//! state swaps.
//!
//! A [`Slot<T>`] owns the current value behind an epoch counter. Writers
//! ([`Slot::publish`]) install a new `Arc<T>` and bump the epoch
//! atomically; readers hold a [`SlotReader<T>`] — one per shard — whose
//! [`current`](SlotReader::current) is **one acquire atomic load** on the
//! fast path: only when the epoch has moved since the reader's last
//! refresh does it take the (uncontended) slot lock to clone the new
//! `Arc`. A request therefore resolves its state exactly once and serves
//! the whole answer from that one immutable value — the *no-torn-reads*
//! guarantee: every reply is consistent with either the pre-swap or the
//! post-swap value, never a mixture (DESIGN.md §12).
//!
//! Epochs double as the "version" the owner reports: version 1 is the
//! value the slot started with, and every successful publish increments
//! it. The serve crate instantiates this with its oracle snapshot
//! (`Slot<Oracle>`), and the policy subsystem with its published
//! estimator tables (`Slot<PolicyTable>`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Shared<T> {
    /// Bumped (release) after the slot is replaced; readers acquire-load
    /// it to decide whether their cached `Arc` is current.
    epoch: AtomicU64,
    /// The current value, tagged with the epoch it was published at so a
    /// reader that races a publish records a consistent pair.
    slot: Mutex<(u64, Arc<T>)>,
}

/// Shared, swappable access to a published value. Cheap to clone; all
/// clones publish to and read from the same slot.
#[derive(Debug)]
pub struct Slot<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Slot<T> {
    fn clone(&self) -> Slot<T> {
        Slot { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Slot<T> {
    /// Wrap `value` as version 1.
    pub fn new(value: Arc<T>) -> Slot<T> {
        Slot { shared: Arc::new(Shared { epoch: AtomicU64::new(1), slot: Mutex::new((1, value)) }) }
    }

    /// The current version (epoch). Starts at 1, incremented by every
    /// successful [`publish`](Self::publish).
    pub fn version(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The current value. Takes the slot lock — fine for admin and
    /// control paths; per-request code should hold a [`SlotReader`].
    pub fn current(&self) -> Arc<T> {
        self.shared.slot.lock().expect("swap slot poisoned").1.clone()
    }

    /// Atomically install `value` as the new current state and return
    /// the version it was assigned. Readers observe the swap on their
    /// next [`SlotReader::current`] call; requests already resolved keep
    /// answering from the value they started with.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let mut slot = self.shared.slot.lock().expect("swap slot poisoned");
        let version = slot.0 + 1;
        *slot = (version, value);
        // Publish the epoch while still holding the lock so a reader
        // that sees the new epoch always finds at-least-that-new a slot.
        self.shared.epoch.store(version, Ordering::Release);
        version
    }

    /// A per-thread reader whose fast path is a single atomic load.
    pub fn reader(&self) -> SlotReader<T> {
        let slot = self.shared.slot.lock().expect("swap slot poisoned");
        SlotReader { shared: Arc::clone(&self.shared), seen: slot.0, cached: slot.1.clone() }
    }
}

impl<T> From<Arc<T>> for Slot<T> {
    fn from(value: Arc<T>) -> Slot<T> {
        Slot::new(value)
    }
}

impl<T> From<T> for Slot<T> {
    fn from(value: T) -> Slot<T> {
        Slot::new(Arc::new(value))
    }
}

/// One shard's cached view of a [`Slot`]. Not `Sync` by design: each
/// shard owns one.
#[derive(Debug)]
pub struct SlotReader<T> {
    shared: Arc<Shared<T>>,
    /// Version of `cached`.
    seen: u64,
    cached: Arc<T>,
}

impl<T> SlotReader<T> {
    /// The current value — the versioned read guard a request takes.
    /// One `Acquire` load when the epoch is unchanged; a slot-lock clone
    /// only in the window right after a publish.
    pub fn current(&mut self) -> &Arc<T> {
        if self.shared.epoch.load(Ordering::Acquire) != self.seen {
            let slot = self.shared.slot.lock().expect("swap slot poisoned");
            self.seen = slot.0;
            self.cached = slot.1.clone();
        }
        &self.cached
    }

    /// Version of the value [`current`](Self::current) last returned.
    /// Shards compare it against their cache-stamp to invalidate
    /// version-dependent state (the reply cache) after a swap.
    pub fn version(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_version_and_swaps() {
        let slot = Slot::new(Arc::new(1u64));
        let mut reader = slot.reader();
        assert_eq!(slot.version(), 1);
        assert_eq!(reader.version(), 1);
        assert_eq!(**reader.current(), 1);

        assert_eq!(slot.publish(Arc::new(2)), 2);
        assert_eq!(slot.version(), 2);
        assert_eq!(**reader.current(), 2);
        assert_eq!(reader.version(), 2);
    }

    #[test]
    fn reader_keeps_old_arc_alive_across_swap() {
        let slot = Slot::new(Arc::new(1u64));
        let mut reader = slot.reader();
        let held = Arc::clone(reader.current());
        slot.publish(Arc::new(2));
        // The request that resolved before the swap still answers from
        // the old value — consistent, never torn.
        assert_eq!(*held, 1);
        assert_eq!(**reader.current(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_old_or_new() {
        let slot = Slot::new(Arc::new(1u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut reader = slot.reader();
                let mut last_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v_val = **reader.current();
                    assert!(v_val == 1 || v_val == 2, "torn value {v_val}");
                    let v = reader.version();
                    assert!(v >= last_version, "version moved backwards: {last_version} -> {v}");
                    // Version and content must agree: version 1 is the
                    // initial value, anything later the published one.
                    assert_eq!(v_val, if v == 1 { 1 } else { 2 });
                    last_version = v;
                }
            }));
        }
        for _ in 0..100 {
            slot.publish(Arc::new(2));
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(slot.version(), 101);
    }
}
