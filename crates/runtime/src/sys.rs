//! The one unsafe module in the workspace: hand-declared glibc bindings
//! for the reactor (`epoll`, `eventfd`) and process-CPU accounting.
//!
//! The build is hermetic — no crates.io, so no `libc`/`mio` — which
//! means the handful of syscall wrappers the readiness loop needs are
//! declared here directly against the C ABI. The policy (DESIGN.md §11)
//! is that **all** `unsafe` lives behind this module's safe wrappers:
//! every other crate keeps `#![forbid(unsafe_code)]`, and `beware-runtime`
//! itself is `#![deny(unsafe_code)]` with an allowance for this module
//! only. Every unsafe block carries a `// SAFETY:` argument.
//!
//! Constants are taken from the Linux UAPI headers
//! (`<sys/epoll.h>`, `<sys/eventfd.h>`, `<bits/time.h>`); they are ABI,
//! not configuration, and have been stable since the syscalls were
//! introduced.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// epoll_ctl ops.
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

// epoll event mask bits.
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` are both `O_CLOEXEC`.
const CLOEXEC: c_int = 0o2000000;
/// `EFD_NONBLOCK` is `O_NONBLOCK`.
const EFD_NONBLOCK: c_int = 0o4000;

/// `CLOCK_PROCESS_CPUTIME_ID` from `<bits/time.h>`.
const CLOCK_PROCESS_CPUTIME_ID: c_int = 2;

/// `struct epoll_event`. The kernel packs it on x86-64 (the 32-bit
/// layout, kept for binary compatibility); other architectures use
/// natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-owned cookie; we store the registration token.
    pub data: u64,
}

/// `struct timespec` on 64-bit Linux.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn clock_gettime(clockid: c_int, tp: *mut Timespec) -> c_int;
}

/// Create an epoll instance (close-on-exec). Returns the owning fd.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes a flags integer and returns a new fd
    // or -1; no pointers are passed.
    let fd = unsafe { epoll_create1(CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Add / modify / delete `fd` in epoll instance `epfd` with the given
/// event mask and token cookie.
pub fn sys_epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: mask, data: token };
    // SAFETY: `ev` is a live, properly laid out epoll_event for the
    // duration of the call; the kernel copies it (or, for DEL, ignores
    // it) and does not retain the pointer.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait for readiness on `epfd` into `events`, with `timeout_ms` (-1 to
/// block). Returns the number of events filled in. `EINTR` surfaces as
/// zero events — the caller's loop re-derives its deadline anyway.
pub fn sys_epoll_wait(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let cap = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
    // SAFETY: the events pointer is valid for `cap` elements, which is
    // exactly what the kernel is told it may fill.
    let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), cap, timeout_ms) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(n as usize)
}

/// Create a nonblocking eventfd (the wakeup doorbell).
pub fn sys_eventfd() -> io::Result<RawFd> {
    // SAFETY: eventfd takes two integers and returns a new fd or -1.
    let fd = unsafe { eventfd(0, CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Bump an eventfd counter by 1. A full counter (`EAGAIN`) means the
/// doorbell is already ringing, which is success for a waker.
pub fn sys_eventfd_signal(fd: RawFd) {
    let one: u64 = 1;
    // SAFETY: writes exactly 8 bytes from a live u64; eventfd requires
    // an 8-byte write.
    let rc = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    debug_assert!(
        rc == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock,
        "eventfd write failed: {:?}",
        io::Error::last_os_error()
    );
}

/// Drain an eventfd counter (reset the doorbell). `EAGAIN` (nothing
/// pending) is fine.
pub fn sys_eventfd_drain(fd: RawFd) {
    let mut count: u64 = 0;
    // SAFETY: reads exactly 8 bytes into a live u64; eventfd requires
    // an 8-byte read.
    let _ = unsafe { read(fd, (&mut count as *mut u64).cast(), 8) };
}

/// Close an fd owned by the reactor (epoll instance or eventfd — never
/// a socket; sockets stay owned by their `TcpStream`s).
pub fn sys_close(fd: RawFd) {
    // SAFETY: the caller owns `fd` and never uses it again (both call
    // sites are Drop impls).
    let _ = unsafe { close(fd) };
}

/// CPU time this process has consumed (user + system), from
/// `CLOCK_PROCESS_CPUTIME_ID`.
pub fn sys_process_cpu_time() -> Option<std::time::Duration> {
    let mut ts = Timespec::default();
    // SAFETY: `ts` is a live, properly laid out timespec the kernel
    // fills in.
    let rc = unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
    if rc != 0 || ts.tv_sec < 0 {
        return None;
    }
    Some(std::time::Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32))
}
