//! A binary-heap deadline scheduler ("timer wheel" API).
//!
//! Poll loops that juggle many deadlines — one idle-eviction deadline per
//! connection, a shutdown drain deadline, deferred chunk releases in the
//! chaos proxy — used to each keep their own `last_active` fields and
//! re-derive "has anything expired?" by scanning every object every
//! iteration. [`DeadlineWheel`] centralizes that: schedule a key at a
//! [`Duration`] timestamp (the [`crate::Clock`] timebase), ask for the
//! next interesting deadline, and pop keys whose time has come.
//!
//! Reschedules and cancellations are **lazy**: the heap keeps stale
//! entries and skips them on pop by comparing a per-key generation
//! counter, so rescheduling a hot connection's idle deadline on every
//! read is one `HashMap` update plus one heap push — no heap surgery.
//! Expiry order is deterministic: by deadline, ties broken by scheduling
//! order (the generation counter), never by hash order.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::time::Duration;

/// One pending heap entry. Ordered by `(at, gen)` only — `gen` is unique
/// per schedule call, so the order is total without requiring `K: Ord`,
/// and FIFO among equal deadlines.
#[derive(Debug)]
struct Entry<K> {
    at: Duration,
    gen: u64,
    key: K,
}

impl<K> PartialEq for Entry<K> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.gen) == (other.at, other.gen)
    }
}

impl<K> Eq for Entry<K> {}

impl<K> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for Entry<K> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline on top.
        (other.at, other.gen).cmp(&(self.at, self.gen))
    }
}

/// A deadline scheduler over keys of type `K`.
///
/// Each key has at most one live deadline; [`schedule`] on an existing
/// key replaces it. Timestamps are [`Duration`]s on whatever
/// [`crate::Clock`] the caller uses — the wheel itself never reads a
/// clock, which is what keeps it trivially virtual-time-compatible.
///
/// [`schedule`]: DeadlineWheel::schedule
#[derive(Debug, Default)]
pub struct DeadlineWheel<K> {
    heap: BinaryHeap<Entry<K>>,
    /// key → (generation of the live entry, its deadline).
    live: HashMap<K, (u64, Duration)>,
    next_gen: u64,
}

impl<K: Eq + Hash + Clone> DeadlineWheel<K> {
    /// An empty wheel.
    pub fn new() -> DeadlineWheel<K> {
        DeadlineWheel { heap: BinaryHeap::new(), live: HashMap::new(), next_gen: 0 }
    }

    /// Schedule (or reschedule) `key` to expire at `at`. Replaces any
    /// existing deadline for the key.
    pub fn schedule(&mut self, key: K, at: Duration) {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.live.insert(key.clone(), (gen, at));
        self.heap.push(Entry { at, gen, key });
    }

    /// Cancel `key`'s deadline. Returns whether one was live. The heap
    /// entry is dropped lazily on a later pop.
    pub fn cancel(&mut self, key: &K) -> bool {
        self.live.remove(key).is_some()
    }

    /// The live deadline of `key`, if any.
    pub fn deadline_of(&self, key: &K) -> Option<Duration> {
        self.live.get(key).map(|&(_, at)| at)
    }

    /// The earliest live deadline (sweeping stale entries off the top).
    pub fn next_deadline(&mut self) -> Option<Duration> {
        self.sweep();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop one key whose deadline is `<= now`, with its deadline.
    /// Deterministic order: earliest deadline first, FIFO among equals.
    pub fn pop_expired(&mut self, now: Duration) -> Option<(K, Duration)> {
        self.sweep();
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            let e = self.heap.pop().expect("peeked entry present");
            self.live.remove(&e.key);
            return Some((e.key, e.at));
        }
        None
    }

    /// Pop the earliest live key regardless of the current time, with its
    /// deadline. The discrete-event form of [`pop_expired`]: a simulated
    /// loop jumps its clock *to* each deadline instead of waiting for it,
    /// so "expired" is whatever is next. Same deterministic order.
    ///
    /// [`pop_expired`]: DeadlineWheel::pop_expired
    pub fn pop_next(&mut self) -> Option<(K, Duration)> {
        self.sweep();
        let e = self.heap.pop()?;
        self.live.remove(&e.key);
        Some((e.key, e.at))
    }

    /// Number of live deadlines.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no deadline is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Drop stale heap entries (cancelled or superseded by a reschedule)
    /// off the top.
    fn sweep(&mut self) {
        while let Some(top) = self.heap.peek() {
            match self.live.get(&top.key) {
                Some(&(gen, _)) if gen == top.gen => return,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> Duration {
        Duration::from_secs(n)
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut w = DeadlineWheel::new();
        w.schedule("b", s(20));
        w.schedule("a", s(10));
        w.schedule("c", s(30));
        assert_eq!(w.next_deadline(), Some(s(10)));
        assert_eq!(w.pop_expired(s(25)), Some(("a", s(10))));
        assert_eq!(w.pop_expired(s(25)), Some(("b", s(20))));
        assert_eq!(w.pop_expired(s(25)), None, "c is not due yet");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_expired(s(30)), Some(("c", s(30))));
        assert!(w.is_empty());
    }

    #[test]
    fn equal_deadlines_pop_fifo() {
        let mut w = DeadlineWheel::new();
        w.schedule(1u32, s(5));
        w.schedule(2u32, s(5));
        w.schedule(3u32, s(5));
        assert_eq!(w.pop_expired(s(5)), Some((1, s(5))));
        assert_eq!(w.pop_expired(s(5)), Some((2, s(5))));
        assert_eq!(w.pop_expired(s(5)), Some((3, s(5))));
    }

    #[test]
    fn reschedule_replaces_and_old_entry_goes_stale() {
        let mut w = DeadlineWheel::new();
        w.schedule("conn", s(10));
        w.schedule("conn", s(100)); // activity: push the deadline out
        assert_eq!(w.deadline_of(&"conn"), Some(s(100)));
        assert_eq!(w.pop_expired(s(50)), None, "the stale s(10) entry must be skipped");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_expired(s(100)), Some(("conn", s(100))));
    }

    #[test]
    fn reschedule_can_also_pull_a_deadline_in() {
        let mut w = DeadlineWheel::new();
        w.schedule("drain", s(100));
        w.schedule("drain", s(1));
        assert_eq!(w.next_deadline(), Some(s(1)));
        assert_eq!(w.pop_expired(s(1)), Some(("drain", s(1))));
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn cancel_removes_lazily() {
        let mut w = DeadlineWheel::new();
        w.schedule("x", s(1));
        w.schedule("y", s(2));
        assert!(w.cancel(&"x"));
        assert!(!w.cancel(&"x"), "double cancel reports nothing live");
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(s(2)), "cancelled top entry swept");
        assert_eq!(w.pop_expired(s(5)), Some(("y", s(2))));
        assert_eq!(w.pop_expired(s(5)), None);
    }

    #[test]
    fn pop_next_ignores_now_but_keeps_order() {
        let mut w = DeadlineWheel::new();
        w.schedule("late", s(100));
        w.schedule("early", s(1));
        w.schedule("tie", s(1));
        assert_eq!(w.pop_next(), Some(("early", s(1))));
        assert_eq!(w.pop_next(), Some(("tie", s(1))), "FIFO among equal deadlines");
        assert_eq!(w.pop_next(), Some(("late", s(100))), "not gated on any notion of now");
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn heavy_rescheduling_stays_consistent() {
        // A hot connection rescheduling on every read: the heap
        // accumulates stale entries, the live view must never lie.
        let mut w = DeadlineWheel::new();
        for i in 0..10_000u64 {
            w.schedule("hot", s(i + 1));
        }
        assert_eq!(w.len(), 1);
        assert_eq!(w.deadline_of(&"hot"), Some(s(10_000)));
        assert_eq!(w.pop_expired(s(9_999)), None);
        assert_eq!(w.pop_expired(s(10_000)), Some(("hot", s(10_000))));
        assert!(w.is_empty());
    }
}
