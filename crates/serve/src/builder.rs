//! Snapshot construction: pipeline output in, canonical
//! [`TimeoutSnapshot`] out.
//!
//! Addresses are grouped by a fixed prefix length (default /24, the
//! survey's block granularity) and each group gets its own
//! [`TimeoutTable`] computed at the configured coverage grid; the global
//! table over *all* addresses becomes the fallback. Because every cell is
//! produced by the same `TimeoutTable::compute_at` the offline tools use,
//! a served answer byte-matches `recommend_timeout` for the same inputs.

use beware_core::percentile::{LatencySamples, PAPER_PERCENTILES};
use beware_core::timeout_table::TimeoutTable;
use beware_dataset::snapshot::{prefix_mask, SnapshotEntry, SnapshotError, TimeoutSnapshot};
use std::collections::BTreeMap;

/// Snapshot build parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCfg {
    /// Prefix length addresses are grouped under (0–32).
    pub prefix_len: u8,
    /// Address-percentile levels, tenths of a percent, strictly
    /// increasing.
    pub addr_pct_tenths: Vec<u16>,
    /// Ping-percentile levels, tenths of a percent, strictly increasing.
    pub ping_pct_tenths: Vec<u16>,
    /// Minimum addresses a prefix needs to earn its own table; thinner
    /// prefixes are left to the fallback.
    pub min_addresses: usize,
}

impl Default for SnapshotCfg {
    fn default() -> Self {
        let paper: Vec<u16> = PAPER_PERCENTILES.iter().map(|&p| (p * 10.0) as u16).collect();
        SnapshotCfg {
            prefix_len: 24,
            addr_pct_tenths: paper.clone(),
            ping_pct_tenths: paper,
            min_addresses: 1,
        }
    }
}

/// Build a snapshot from filtered per-address samples (the analysis
/// pipeline's `samples` output). Fails with a [`SnapshotError`] when the
/// configuration is invalid or no address has samples.
pub fn build_snapshot(
    samples: &BTreeMap<u32, LatencySamples>,
    cfg: &SnapshotCfg,
) -> Result<TimeoutSnapshot, SnapshotError> {
    if cfg.prefix_len > 32 {
        return Err(SnapshotError::PrefixTooLong(cfg.prefix_len));
    }
    let addr_levels = levels_to_f64(&cfg.addr_pct_tenths)?;
    let ping_levels = levels_to_f64(&cfg.ping_pct_tenths)?;

    let fallback_table = TimeoutTable::compute_at(samples, &addr_levels, &ping_levels)
        .ok_or(SnapshotError::NoSamples)?;

    let mask = prefix_mask(cfg.prefix_len);
    let mut groups: BTreeMap<u32, BTreeMap<u32, LatencySamples>> = BTreeMap::new();
    for (&addr, s) in samples {
        if s.is_empty() {
            continue;
        }
        groups.entry(addr & mask).or_default().insert(addr, s.clone());
    }

    let mut entries = Vec::with_capacity(groups.len());
    for (prefix, group) in &groups {
        if group.len() < cfg.min_addresses {
            continue;
        }
        let Some(table) = TimeoutTable::compute_at(group, &addr_levels, &ping_levels) else {
            continue;
        };
        entries.push(SnapshotEntry {
            prefix: *prefix,
            len: cfg.prefix_len,
            cells: flatten_bits(&table),
        });
    }

    let snap = TimeoutSnapshot {
        address_pct_tenths: cfg.addr_pct_tenths.clone(),
        ping_pct_tenths: cfg.ping_pct_tenths.clone(),
        fallback: flatten_bits(&fallback_table),
        entries,
    };
    snap.validate()?;
    Ok(snap)
}

fn levels_to_f64(tenths: &[u16]) -> Result<Vec<f64>, SnapshotError> {
    if tenths.is_empty() {
        return Err(SnapshotError::EmptyLevels);
    }
    if let Some(&t) = tenths.iter().find(|&&t| t == 0 || t > 1000) {
        return Err(SnapshotError::LevelOutOfRange(t));
    }
    if tenths.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::LevelsNotIncreasing);
    }
    Ok(tenths.iter().map(|&t| f64::from(t) / 10.0).collect())
}

fn flatten_bits(table: &TimeoutTable) -> Vec<u64> {
    table.cells.iter().flatten().map(|v| v.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::proto::Status;
    use beware_core::recommend::recommend_timeout;

    fn samples() -> BTreeMap<u32, LatencySamples> {
        let mut m = BTreeMap::new();
        // A fast /24 ...
        for host in 0..8u32 {
            m.insert(0x0a000000 | host, LatencySamples::from_values(vec![0.05; 50]));
        }
        // ... and a turtle /24.
        for host in 0..4u32 {
            let mut v = vec![0.3; 45];
            v.extend(vec![9.0; 5]);
            m.insert(0x0a000100 | host, LatencySamples::from_values(v));
        }
        m
    }

    #[test]
    fn snapshot_groups_by_prefix_and_matches_offline_tables() {
        let s = samples();
        let snap = build_snapshot(&s, &SnapshotCfg::default()).unwrap();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].prefix, 0x0a000000);
        assert_eq!(snap.entries[1].prefix, 0x0a000100);

        // The fallback must byte-match the offline recommendation over
        // the full population at every grid point.
        let oracle = Oracle::from_snapshot(snap).unwrap();
        for &(r, c) in &[(950u16, 950u16), (990, 980), (500, 10)] {
            let offline = recommend_timeout(&s, f64::from(r) / 10.0, f64::from(c) / 10.0).unwrap();
            let served = oracle.lookup(0xdead_beef, r, c).unwrap();
            assert_eq!(served.status, Status::Fallback);
            assert_eq!(served.timeout_bits, offline.timeout_secs.to_bits(), "({r},{c})");
        }

        // A covered address answers from its own /24: the turtle prefix
        // needs seconds at high coverage, the fast prefix does not.
        let turtle = oracle.lookup(0x0a000102, 950, 990).unwrap();
        assert_eq!(turtle.status, Status::Exact);
        assert!(turtle.timeout_secs() > 5.0, "{}", turtle.timeout_secs());
        let fast = oracle.lookup(0x0a000007, 950, 990).unwrap();
        assert!(fast.timeout_secs() < 1.0, "{}", fast.timeout_secs());
    }

    #[test]
    fn min_addresses_prunes_thin_prefixes() {
        let s = samples();
        let cfg = SnapshotCfg { min_addresses: 5, ..Default::default() };
        let snap = build_snapshot(&s, &cfg).unwrap();
        // Only the 8-address fast /24 survives; the 4-address turtle /24
        // falls back.
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0].prefix, 0x0a000000);
    }

    #[test]
    fn prefix_len_zero_gives_single_default_route() {
        let s = samples();
        let cfg = SnapshotCfg { prefix_len: 0, ..Default::default() };
        let snap = build_snapshot(&s, &cfg).unwrap();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!((snap.entries[0].prefix, snap.entries[0].len), (0, 0));
        // The /0 table covers everyone, so it equals the fallback.
        assert_eq!(snap.entries[0].cells, snap.fallback);
    }

    #[test]
    fn empty_or_invalid_inputs_fail() {
        assert_eq!(
            build_snapshot(&BTreeMap::new(), &SnapshotCfg::default()),
            Err(SnapshotError::NoSamples)
        );
        let cfg = SnapshotCfg { prefix_len: 33, ..Default::default() };
        assert_eq!(build_snapshot(&samples(), &cfg), Err(SnapshotError::PrefixTooLong(33)));
        let cfg = SnapshotCfg { addr_pct_tenths: vec![950, 950], ..Default::default() };
        assert_eq!(build_snapshot(&samples(), &cfg), Err(SnapshotError::LevelsNotIncreasing));
        let cfg = SnapshotCfg { ping_pct_tenths: vec![500, 1001], ..Default::default() };
        assert_eq!(build_snapshot(&samples(), &cfg), Err(SnapshotError::LevelOutOfRange(1001)));
    }
}
