//! Blocking client for the oracle protocol.
//!
//! One [`Client`] wraps one TCP connection and issues request/reply
//! round-trips. The client practices what the service preaches: every
//! read carries a socket timeout, so a stalled server surfaces as
//! [`ClientError::Io`] instead of hanging the caller forever.

use crate::proto::{self, ErrorCode, Message, ProtoError, ReloadKind, Status};
use beware_runtime::clock::{SharedClock, WallClock};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully decoded query answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// Whether a prefix matched or the global fallback answered.
    pub status: Status,
    /// The recommended timeout in seconds.
    pub timeout_secs: f64,
    /// Raw `f64` bits of the timeout, for byte-exact comparison against
    /// offline computation.
    pub timeout_bits: u64,
    /// The matched prefix (0 when the fallback answered).
    pub prefix: u32,
    /// The matched prefix length (0 when the fallback answered).
    pub prefix_len: u8,
}

/// Server-side aggregate counters, as returned by a `Stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries answered since startup.
    pub queries: u64,
    /// Answers served from a matching prefix table.
    pub hits_exact: u64,
    /// Answers served from the global fallback table.
    pub hits_fallback: u64,
}

/// The serving snapshot's identity, as returned by a `SnapshotInfo`
/// request — and by a successful `Reload`, which reports the snapshot
/// it just installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot version (epoch): 1 at startup, +1 per successful reload.
    pub version: u64,
    /// Number of per-prefix tables in the serving snapshot.
    pub entries: u32,
    /// Content identity: the snapshot's fletcher-64 trailer checksum —
    /// the value a delta's base checksum must match.
    pub checksum: u64,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The server's reply could not be decoded.
    Proto(ProtoError),
    /// The server answered with an explicit protocol error.
    Server(ErrorCode),
    /// The server replied with a message that does not answer the
    /// request (e.g. a `StatsReply` to a `Query`).
    UnexpectedReply,
    /// The connection was poisoned by an earlier mid-frame failure (for
    /// example a `read_timeout` that fired with a reply half-received):
    /// the stream position is unknown, so any further round-trip would
    /// decode garbage. Open a new connection.
    Poisoned,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server(code) => write!(f, "server error: {code:?}"),
            ClientError::UnexpectedReply => write!(f, "unexpected reply opcode"),
            ClientError::Poisoned => {
                write!(f, "connection poisoned by an earlier mid-frame failure; reconnect")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// Whether a connect-time failure can be cured by waiting: only refusal
/// and its accept-race kin mean "the server is not listening *yet*".
/// Anything else — unroutable network, permission, bad socket options —
/// will not improve within any deadline, so retrying just burns it.
fn connect_error_is_retryable(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(io) if matches!(
            io.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
        )
    )
}

/// One connection to an oracle server.
///
/// Generic over the transport: production code uses the
/// [`TcpStream`] default via [`connect`](Client::connect), tests feed any
/// `Read + Write` — e.g. a
/// [`FaultyTransport`](../../beware_faultsim/struct.FaultyTransport.html)
/// over an in-memory oracle — through
/// [`from_transport`](Client::from_transport), so the poisoning contract
/// is checkable without sockets or real timeouts.
#[derive(Debug)]
pub struct Client<T = TcpStream> {
    stream: T,
    poisoned: bool,
}

impl Client<TcpStream> {
    /// Connect with a bounded read timeout on the resulting connection.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client { stream, poisoned: false })
    }

    /// Connect, retrying on refusal until `deadline` elapses — for racing
    /// a server that is still binding its socket. Non-refusal errors (an
    /// unroutable address, say) fail immediately rather than spinning for
    /// the full deadline.
    pub fn connect_retry(
        addr: SocketAddr,
        read_timeout: Duration,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        Client::connect_retry_with_clock(addr, read_timeout, deadline, &WallClock::shared())
    }

    /// [`connect_retry`](Client::connect_retry) with the retry deadline
    /// and backoff measured on `clock` — under a virtual clock the
    /// deadline arithmetic is testable without waiting it out.
    pub fn connect_retry_with_clock(
        addr: SocketAddr,
        read_timeout: Duration,
        deadline: Duration,
        clock: &SharedClock,
    ) -> Result<Client, ClientError> {
        let t0 = clock.now();
        loop {
            match Client::connect(addr, read_timeout) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if !connect_error_is_retryable(&e) || clock.since(t0) >= deadline {
                        return Err(e);
                    }
                    clock.sleep(Duration::from_millis(10));
                }
            }
        }
    }
}

impl<T: Read + Write> Client<T> {
    /// Wrap an already-established transport. The caller owns any
    /// timeout configuration the transport needs; the poisoning rules
    /// are identical to a TCP client's.
    pub fn from_transport(stream: T) -> Client<T> {
        Client { stream, poisoned: false }
    }

    /// Whether an earlier mid-frame failure has poisoned this connection
    /// (every further round-trip returns [`ClientError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Ask for the timeout covering `addr_pct_tenths`‰ of addresses and
    /// `ping_pct_tenths`‰ of pings to address `addr` (both in tenths of a
    /// percent, e.g. `950` = 95.0%).
    pub fn query(
        &mut self,
        addr: u32,
        addr_pct_tenths: u16,
        ping_pct_tenths: u16,
    ) -> Result<Answer, ClientError> {
        let reply = self.round_trip(&Message::Query { addr, addr_pct_tenths, ping_pct_tenths })?;
        match reply {
            Message::Answer { status, timeout_bits, prefix, prefix_len } => Ok(Answer {
                status,
                timeout_secs: f64::from_bits(timeout_bits),
                timeout_bits,
                prefix,
                prefix_len,
            }),
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Fetch the server's aggregate counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Message::Stats)? {
            Message::StatsReply { queries, hits_exact, hits_fallback } => {
                Ok(ServerStats { queries, hits_exact, hits_fallback })
            }
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask which snapshot the server is currently answering from.
    pub fn snapshot_info(&mut self) -> Result<SnapshotInfo, ClientError> {
        match self.round_trip(&Message::SnapshotInfo)? {
            Message::SnapshotInfoReply { version, entries, checksum } => {
                Ok(SnapshotInfo { version, entries, checksum })
            }
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Feed the server's online policy one measured RTT for `addr`
    /// (`beware serve --policy`); resolves to the server's running
    /// report count. A snapshot-only server answers
    /// [`ErrorCode::PolicyUnavailable`].
    pub fn report(&mut self, addr: u32, rtt_us: u32) -> Result<u64, ClientError> {
        match self.round_trip(&Message::Report { addr, rtt_us })? {
            Message::ReportAck { reports } => Ok(reports),
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask the server to hot-reload its snapshot from the configured
    /// source (`--reload-from`); resolves to the identity of the
    /// snapshot now being served. Failures come back typed:
    /// [`ErrorCode::ReloadUnavailable`] (no source configured),
    /// [`ErrorCode::SnapshotRejected`] (unreadable or invalid source —
    /// the old snapshot keeps serving), or [`ErrorCode::StaleDelta`]
    /// (the delta's base is not the serving snapshot).
    pub fn reload(&mut self, kind: ReloadKind) -> Result<SnapshotInfo, ClientError> {
        match self.round_trip(&Message::Reload { kind })? {
            Message::SnapshotInfoReply { version, entries, checksum } => {
                Ok(SnapshotInfo { version, entries, checksum })
            }
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask the server to shut down; resolves once the acknowledgement
    /// arrives.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Message::Shutdown)? {
            Message::ShutdownAck => Ok(()),
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    fn round_trip(&mut self, msg: &Message) -> Result<Message, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        if let Err(e) = proto::write_frame(&mut self.stream, msg) {
            // A failed or partial request write leaves the server's
            // decoder in an unknown state.
            self.poisoned = true;
            return Err(ClientError::Io(e));
        }
        match proto::read_frame(&mut self.stream) {
            Ok(m) => Ok(m),
            Err(e) => {
                // Any transport or framing failure mid-reply leaves the
                // stream position unknown — most insidiously a
                // `read_timeout` firing with a frame half-received: the
                // abandoned bytes arrive later and shift every subsequent
                // frame, so reuse would decode garbage forever. Poison
                // the connection so the *next* call fails with a typed
                // error instead. (Server-level errors and well-framed
                // unexpected replies keep the connection usable.)
                self.poisoned = true;
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    fn io_err(kind: io::ErrorKind) -> ClientError {
        ClientError::Io(io::Error::new(kind, "test"))
    }

    #[test]
    fn only_refusal_kin_are_retryable() {
        assert!(connect_error_is_retryable(&io_err(io::ErrorKind::ConnectionRefused)));
        assert!(connect_error_is_retryable(&io_err(io::ErrorKind::ConnectionReset)));
        assert!(connect_error_is_retryable(&io_err(io::ErrorKind::ConnectionAborted)));
        assert!(!connect_error_is_retryable(&io_err(io::ErrorKind::TimedOut)));
        assert!(!connect_error_is_retryable(&io_err(io::ErrorKind::PermissionDenied)));
        assert!(!connect_error_is_retryable(&io_err(io::ErrorKind::AddrNotAvailable)));
        assert!(!connect_error_is_retryable(&io_err(io::ErrorKind::Other)));
        assert!(!connect_error_is_retryable(&ClientError::Poisoned));
        assert!(!connect_error_is_retryable(&ClientError::UnexpectedReply));
    }

    #[test]
    fn connect_retry_fails_fast_on_unroutable_address() {
        // 255.255.255.255 is never connectable; the kernel rejects it
        // immediately with a non-refusal error. With a 10 s deadline, the
        // old retry-everything loop would spin the whole deadline —
        // fail-fast must return well under it.
        let addr: SocketAddr = "255.255.255.255:9".parse().unwrap();
        let t0 = Instant::now();
        let out = Client::connect_retry(addr, Duration::from_secs(1), Duration::from_secs(10));
        assert!(out.is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "non-retryable connect error spun for {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn connect_retry_still_waits_out_refusals() {
        // A bound-then-dropped listener's port is (almost certainly)
        // refused: the deadline must be honored, then the refusal
        // surfaced.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t0 = Instant::now();
        let out = Client::connect_retry(addr, Duration::from_secs(1), Duration::from_millis(80));
        assert!(out.is_err());
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(80), "gave up after {waited:?}");
        assert!(waited < Duration::from_secs(5), "spun too long: {waited:?}");
    }

    #[test]
    fn mid_frame_timeout_poisons_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Consume the query, then answer with HALF a frame and stall.
            let mut buf = [0u8; 64];
            let _ = s.read(&mut buf);
            let reply = proto::encode(&Message::Answer {
                status: Status::Exact,
                timeout_bits: 3.0f64.to_bits(),
                prefix: 0x0a000000,
                prefix_len: 24,
            });
            s.write_all(&reply[..reply.len() / 2]).unwrap();
            // Hold the socket open until the client is done asserting, so
            // the tail bytes never arrive and the timeout genuinely fires
            // mid-frame.
            let _ = done_rx.recv_timeout(Duration::from_secs(10));
        });

        let mut client = Client::connect(addr, Duration::from_millis(100)).unwrap();
        assert!(!client.is_poisoned());
        match client.query(1, 950, 950) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected a timeout Io error, got {other:?}"),
        }
        assert!(client.is_poisoned());
        // Reuse must fail with the dedicated variant, not decode garbage.
        match client.query(1, 950, 950) {
            Err(ClientError::Poisoned) => {}
            other => panic!("expected Poisoned on reuse, got {other:?}"),
        }
        match client.stats() {
            Err(ClientError::Poisoned) => {}
            other => panic!("expected Poisoned on reuse, got {other:?}"),
        }
        done_tx.send(()).ok();
        server.join().unwrap();
    }

    #[test]
    fn server_level_errors_do_not_poison() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            for reply in [
                Message::Error { code: ErrorCode::UnsupportedPercentile },
                Message::ShutdownAck, // wrong opcode for a query
                Message::Answer {
                    status: Status::Fallback,
                    timeout_bits: 60.0f64.to_bits(),
                    prefix: 0,
                    prefix_len: 0,
                },
            ] {
                let _ = s.read(&mut buf);
                s.write_all(&proto::encode(&reply)).unwrap();
            }
        });

        let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
        assert!(matches!(client.query(1, 123, 950), Err(ClientError::Server(_))));
        assert!(!client.is_poisoned(), "a well-framed server error must not poison");
        assert!(matches!(client.query(1, 950, 950), Err(ClientError::UnexpectedReply)));
        assert!(!client.is_poisoned(), "a well-framed wrong opcode must not poison");
        let ans = client.query(1, 950, 950).unwrap();
        assert_eq!(ans.status, Status::Fallback);
        server.join().unwrap();
    }
}
