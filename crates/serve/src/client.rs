//! Blocking client for the oracle protocol.
//!
//! One [`Client`] wraps one TCP connection and issues request/reply
//! round-trips. The client practices what the service preaches: every
//! read carries a socket timeout, so a stalled server surfaces as
//! [`ClientError::Io`] instead of hanging the caller forever.

use crate::proto::{self, ErrorCode, Message, ProtoError, Status};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A fully decoded query answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// Whether a prefix matched or the global fallback answered.
    pub status: Status,
    /// The recommended timeout in seconds.
    pub timeout_secs: f64,
    /// Raw `f64` bits of the timeout, for byte-exact comparison against
    /// offline computation.
    pub timeout_bits: u64,
    /// The matched prefix (0 when the fallback answered).
    pub prefix: u32,
    /// The matched prefix length (0 when the fallback answered).
    pub prefix_len: u8,
}

/// Server-side aggregate counters, as returned by a `Stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries answered since startup.
    pub queries: u64,
    /// Answers served from a matching prefix table.
    pub hits_exact: u64,
    /// Answers served from the global fallback table.
    pub hits_fallback: u64,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The server's reply could not be decoded.
    Proto(ProtoError),
    /// The server answered with an explicit protocol error.
    Server(ErrorCode),
    /// The server replied with a message that does not answer the
    /// request (e.g. a `StatsReply` to a `Query`).
    UnexpectedReply,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server(code) => write!(f, "server error: {code:?}"),
            ClientError::UnexpectedReply => write!(f, "unexpected reply opcode"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// One connection to an oracle server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with a bounded read timeout on the resulting connection.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client { stream })
    }

    /// Connect, retrying on refusal until `deadline` elapses — for racing
    /// a server that is still binding its socket.
    pub fn connect_retry(
        addr: SocketAddr,
        read_timeout: Duration,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        let t0 = Instant::now();
        loop {
            match Client::connect(addr, read_timeout) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if t0.elapsed() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Ask for the timeout covering `addr_pct_tenths`‰ of addresses and
    /// `ping_pct_tenths`‰ of pings to address `addr` (both in tenths of a
    /// percent, e.g. `950` = 95.0%).
    pub fn query(
        &mut self,
        addr: u32,
        addr_pct_tenths: u16,
        ping_pct_tenths: u16,
    ) -> Result<Answer, ClientError> {
        let reply = self.round_trip(&Message::Query { addr, addr_pct_tenths, ping_pct_tenths })?;
        match reply {
            Message::Answer { status, timeout_bits, prefix, prefix_len } => Ok(Answer {
                status,
                timeout_secs: f64::from_bits(timeout_bits),
                timeout_bits,
                prefix,
                prefix_len,
            }),
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Fetch the server's aggregate counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Message::Stats)? {
            Message::StatsReply { queries, hits_exact, hits_fallback } => {
                Ok(ServerStats { queries, hits_exact, hits_fallback })
            }
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    /// Ask the server to shut down; resolves once the acknowledgement
    /// arrives.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Message::Shutdown)? {
            Message::ShutdownAck => Ok(()),
            Message::Error { code } => Err(ClientError::Server(code)),
            _ => Err(ClientError::UnexpectedReply),
        }
    }

    fn round_trip(&mut self, msg: &Message) -> Result<Message, ClientError> {
        proto::write_frame(&mut self.stream, msg)?;
        Ok(proto::read_frame(&mut self.stream)?)
    }
}
