//! The transport-independent server engine: the oracle+policy protocol
//! state machine, split out of the epoll-specific shard loop.
//!
//! [`server`](crate::server) used to fuse three concerns in one loop:
//! readiness plumbing (reactor registration, interest flips, the idle
//! wheel), per-connection byte shuffling, and the request/reply protocol.
//! Only the first is socket-specific. This module owns the other two
//! behind a seam of three types:
//!
//! * [`Transport`] — the five lines of I/O a connection actually needs:
//!   nonblocking read and write. [`std::net::TcpStream`] implements it
//!   (the production server), and [`ChannelTransport`] implements it over
//!   in-memory byte queues (the in-sim server `beware simserve` hosts
//!   inside netsim — zero sockets, zero syscalls).
//! * [`Conn`] — per-connection state (reassembly buffer, bounded output
//!   queue, lifecycle flags) generic over its transport.
//! * [`Engine`] — one shard's protocol state: the lock-free oracle
//!   reader, the policy plane, the reply cache, reload execution. Its
//!   [`service`](Engine::service)/[`flush`](Engine::flush) methods run
//!   **identical logic** whether bytes arrive from a kernel socket or a
//!   simulated link, which is what makes in-sim campaign results
//!   transferable to the socket server.
//!
//! Shared-across-shards state (global stats, the policy estimator, the
//! reload context, the stop signal) lives in [`EngineCore`]; each shard
//! derives its [`Engine`] from it. The multi-node cluster (ROADMAP
//! item 1) gets its transport seam here too: a remote-peer transport is
//! just another `Transport` impl.

use crate::oracle::{LookupError, Oracle};
use crate::proto::{self, ErrorCode, Message, ProtoError, ReloadKind, Status};
use crate::swap::{OracleHandle, OracleReader};
use beware_dataset::snapshot::{
    prefix_mask, read_delta, read_snapshot, snapshot_checksum, SnapshotError,
};
use beware_policy::{PolicyKind, PolicyTable, PrefixPolicyMap, RttSample, INITIAL_TIMEOUT_SECS};
use beware_runtime::clock::SharedClock;
use beware_runtime::reactor::{Interest, StopSignal};
use beware_runtime::swap::{Slot, SlotReader};
use beware_telemetry::Registry;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The byte-I/O surface a connection needs from its medium. Both methods
/// are nonblocking: they move what they can now and report
/// [`io::ErrorKind::WouldBlock`] instead of waiting — the engine never
/// parks a shard on a peer.
pub trait Transport {
    /// Read available bytes into `buf`. `Ok(0)` means the peer closed.
    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write as much of `buf` as the medium accepts right now.
    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize>;
}

/// The production transport: a nonblocking kernel socket.
impl Transport for TcpStream {
    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
        Write::write(self, buf)
    }
}

/// The simulated transport: a duplex pair of in-memory byte queues,
/// created with [`channel_pair`]. The server side implements
/// [`Transport`]; the [`ChannelPeer`] side is the simulated client's
/// handle. Single-threaded by construction (`Rc`) — an in-sim cell owns
/// both ends, and determinism forbids cross-thread traffic anyway.
#[derive(Debug)]
pub struct ChannelTransport {
    inbound: Rc<RefCell<VecDeque<u8>>>,
    outbound: Rc<RefCell<VecDeque<u8>>>,
    peer_open: Rc<RefCell<bool>>,
}

/// The client end of a [`ChannelTransport`].
#[derive(Debug)]
pub struct ChannelPeer {
    /// Bytes the client sends (the server's inbound queue).
    to_server: Rc<RefCell<VecDeque<u8>>>,
    /// Bytes the server sent (the server's outbound queue).
    from_server: Rc<RefCell<VecDeque<u8>>>,
    open: Rc<RefCell<bool>>,
}

/// An in-memory duplex byte channel: `(server_side, client_side)`.
pub fn channel_pair() -> (ChannelTransport, ChannelPeer) {
    let inbound = Rc::new(RefCell::new(VecDeque::new()));
    let outbound = Rc::new(RefCell::new(VecDeque::new()));
    let open = Rc::new(RefCell::new(true));
    (
        ChannelTransport {
            inbound: Rc::clone(&inbound),
            outbound: Rc::clone(&outbound),
            peer_open: Rc::clone(&open),
        },
        ChannelPeer { to_server: inbound, from_server: outbound, open },
    )
}

impl Transport for ChannelTransport {
    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut q = self.inbound.borrow_mut();
        if q.is_empty() {
            if *self.peer_open.borrow() {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            return Ok(0); // peer hung up and everything is drained
        }
        let n = q.len().min(buf.len());
        for b in buf.iter_mut().take(n) {
            *b = q.pop_front().expect("len checked");
        }
        Ok(n)
    }

    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.outbound.borrow_mut().extend(buf.iter().copied());
        Ok(buf.len())
    }
}

impl ChannelPeer {
    /// Queue request bytes for the server to read.
    pub fn send(&self, bytes: &[u8]) {
        self.to_server.borrow_mut().extend(bytes.iter().copied());
    }

    /// Take every reply byte the server has written so far.
    pub fn drain(&self, into: &mut Vec<u8>) {
        let mut q = self.from_server.borrow_mut();
        into.extend(q.iter().copied());
        q.clear();
    }

    /// Reply bytes currently queued.
    pub fn pending(&self) -> usize {
        self.from_server.borrow().len()
    }

    /// Hang up: the server's next read observes EOF once the inbound
    /// queue is drained.
    pub fn close(&self) {
        *self.open.borrow_mut() = false;
    }
}

/// Aggregate counters served by the `Stats` request. Shared across
/// shards; relaxed ordering is fine for monotone counters.
#[derive(Debug, Default)]
pub(crate) struct GlobalStats {
    pub(crate) queries: AtomicU64,
    pub(crate) hits_exact: AtomicU64,
    pub(crate) hits_fallback: AtomicU64,
    pub(crate) reports: AtomicU64,
}

/// How many absorbed `Report`s between [`PolicyTable`] publications.
/// Small enough that a fresh estimate reaches the read path promptly,
/// large enough that the freeze-and-swap cost amortizes.
const POLICY_PUBLISH_EVERY: u64 = 64;

/// The online-estimator plane, shared by every shard when a policy is
/// configured. The mutable per-prefix map lives behind a mutex touched
/// only by `Report` handling; the read path answers from the last
/// published [`PolicyTable`] through a lock-free slot reader — a query
/// never waits on a report.
pub(crate) struct PolicyCtx {
    map: Mutex<PrefixPolicyMap>,
    pub(crate) table: Slot<PolicyTable>,
}

impl PolicyCtx {
    pub(crate) fn new(kind: PolicyKind) -> PolicyCtx {
        let map = PrefixPolicyMap::for_kind(kind);
        let empty = PolicyTable::empty(map.prefix_len(), INITIAL_TIMEOUT_SECS);
        PolicyCtx { map: Mutex::new(map), table: Slot::new(Arc::new(empty)) }
    }

    /// Absorb one RTT report; freeze and publish the table on the very
    /// first report and every [`POLICY_PUBLISH_EVERY`] thereafter.
    /// Returns the running report count.
    ///
    /// Publishing on the first report matters on low-traffic prefixes: a
    /// publish-every-64 cadence alone leaves readers on the initial empty
    /// boot table indefinitely when fewer than 64 reports ever arrive.
    fn absorb(&self, addr: u32, rtt_us: u32, stats: &GlobalStats) -> u64 {
        let mut map = self.map.lock().expect("policy map poisoned");
        let n = stats.reports.fetch_add(1, Ordering::Relaxed) + 1;
        // Estimators key on order, not wall time; the report sequence
        // number is a deterministic monotone stand-in.
        map.observe(addr, RttSample::new(f64::from(rtt_us) / 1e6, n as f64));
        if n == 1 || n.is_multiple_of(POLICY_PUBLISH_EVERY) {
            self.table.publish(Arc::new(map.snapshot_table(INITIAL_TIMEOUT_SECS)));
        }
        n
    }
}

/// A shard's view of the policy plane: the shared context plus its own
/// lock-free table reader.
struct PolicyPlane {
    ctx: Arc<PolicyCtx>,
    reader: SlotReader<PolicyTable>,
}

/// Everything a shard needs to execute a reload: the slot to publish
/// into, the configured source path, and a lock that makes each
/// reload's read-base → apply → publish sequence atomic against
/// concurrent reloads on other shards (without it, two racing delta
/// reloads could both read the same base and the loser would publish a
/// snapshot the winner's delta never saw).
pub(crate) struct ReloadCtx {
    handle: OracleHandle,
    pub(crate) source: Option<PathBuf>,
    lock: Mutex<()>,
}

/// What a reload attempt did.
enum ReloadOutcome {
    /// A new oracle was published at `version`.
    Swapped { version: u64, entries: u32, checksum: u64 },
    /// Poll only: the source already matches what is being served.
    Unchanged,
    /// The delta was computed against a base that is not the serving
    /// snapshot.
    Stale,
    /// Corrupt or invalid source; the serving snapshot is untouched.
    Rejected,
}

/// Decode `bytes` as a snapshot source (full or delta), apply, and
/// publish. With `explicit` the kind is the operator's claim — a
/// mismatched magic decodes as garbage and is `Rejected`. `None` (the
/// poller) sniffs the magic and reports an already-applied source as
/// `Unchanged`, which is what makes polling idempotent.
fn apply_reload(ctx: &ReloadCtx, bytes: &[u8], explicit: Option<ReloadKind>) -> ReloadOutcome {
    let _guard = ctx.lock.lock().expect("reload lock poisoned");
    let current = ctx.handle.current();
    let is_delta = match explicit {
        Some(ReloadKind::Full) => false,
        Some(ReloadKind::Delta) => true,
        None => bytes.starts_with(b"BWTD"),
    };
    let built = if is_delta {
        let Ok(delta) = read_delta(&mut &bytes[..]) else { return ReloadOutcome::Rejected };
        if explicit.is_none() && delta.target_checksum == current.checksum() {
            return ReloadOutcome::Unchanged;
        }
        // The base the delta applies to is reconstructed from the
        // serving oracle itself — `apply` then enforces the base
        // checksum, so a delta against any other generation is Stale.
        match delta.apply(&current.to_snapshot()) {
            Ok(snap) => Oracle::from_snapshot(snap),
            Err(SnapshotError::StaleDelta { .. }) => return ReloadOutcome::Stale,
            Err(_) => return ReloadOutcome::Rejected,
        }
    } else {
        let Ok(snap) = read_snapshot(&mut &bytes[..]) else { return ReloadOutcome::Rejected };
        if explicit.is_none() && snapshot_checksum(&snap) == current.checksum() {
            return ReloadOutcome::Unchanged;
        }
        Oracle::from_snapshot(snap)
    };
    match built {
        Ok(oracle) => {
            let entries = oracle.entry_count() as u32;
            let checksum = oracle.checksum();
            let version = ctx.handle.publish(Arc::new(oracle));
            ReloadOutcome::Swapped { version, entries, checksum }
        }
        Err(_) => ReloadOutcome::Rejected,
    }
}

/// Execute an explicit `Reload` admin frame against the configured
/// source, accounting under `oracle/`.
fn admin_reload(kind: ReloadKind, ctx: &ReloadCtx, reg: &mut Registry) -> Message {
    let Some(path) = ctx.source.as_ref() else {
        reg.scope("oracle").incr("reload_failures");
        return Message::Error { code: ErrorCode::ReloadUnavailable };
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => {
            reg.scope("oracle").incr("reload_failures");
            return Message::Error { code: ErrorCode::SnapshotRejected };
        }
    };
    match apply_reload(ctx, &bytes, Some(kind)) {
        ReloadOutcome::Swapped { version, entries, checksum } => {
            let mut oracle_scope = reg.scope("oracle");
            oracle_scope.incr("reloads");
            oracle_scope.gauge_max("snapshot_version", version);
            Message::SnapshotInfoReply { version, entries, checksum }
        }
        ReloadOutcome::Stale => {
            reg.scope("oracle").incr("stale_delta_rejected");
            Message::Error { code: ErrorCode::StaleDelta }
        }
        ReloadOutcome::Rejected | ReloadOutcome::Unchanged => {
            reg.scope("oracle").incr("reload_failures");
            Message::Error { code: ErrorCode::SnapshotRejected }
        }
    }
}

/// One connection owned by a shard, generic over its byte medium.
pub struct Conn<T> {
    /// Shard-local identity — the reactor registration token and the key
    /// of this connection's idle deadline on the shard's deadline wheel.
    pub(crate) id: u64,
    pub(crate) transport: T,
    /// Reassembly buffer for partially received frames.
    buf: Vec<u8>,
    /// Bounded outbound queue. Replies are *enqueued* here and drained
    /// on writability with nonblocking writes — the shard never waits on
    /// a peer's receive window, so one connection that stops reading
    /// cannot head-of-line-block every other connection on the shard.
    out: Vec<u8>,
    /// Offset of the not-yet-written suffix of `out`.
    out_pos: usize,
    pub(crate) open: bool,
    /// Reply of record is queued (error frame, shutdown ack): stop
    /// reading, close once `out` drains.
    pub(crate) close_after_flush: bool,
    /// Read activity since the last service pass; the shard loop pushes
    /// the idle deadline out (reschedules the wheel) when set.
    pub(crate) touched: bool,
    /// The interest currently registered with the reactor; flipped to
    /// include writability exactly while a backlog exists. Meaningless
    /// (and untouched) for transports no reactor watches.
    pub(crate) interest: Interest,
}

impl<T> Conn<T> {
    /// A fresh connection over `transport`, identified by `id` within
    /// its shard.
    pub fn new(id: u64, transport: T) -> Conn<T> {
        Conn {
            id,
            transport,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            open: true,
            close_after_flush: false,
            touched: false,
            interest: Interest::READABLE,
        }
    }

    /// Bytes queued but not yet on the wire.
    pub fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Whether the connection is still usable.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Borrow the underlying transport (the socket server needs the fd
    /// for reactor registration).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The interest this connection's state wants registered: readable
    /// while we still accept requests, writable exactly while a backlog
    /// exists.
    pub(crate) fn desired_interest(&self, draining: bool) -> Interest {
        let mut want = Interest::NONE;
        if !self.close_after_flush && !draining {
            want = want.and(Interest::READABLE);
        }
        if self.backlog() > 0 {
            want = want.and(Interest::WRITABLE);
        }
        want
    }
}

/// Per-shard answer cache cap; the cache is cleared wholesale when full
/// (queries repeat heavily under load, so wholesale eviction is rare and
/// keeps the structure trivial).
const CACHE_CAP: usize = 8192;

/// Default upper bound on one connection's queued-but-unsent reply
/// bytes. A peer that keeps sending queries without draining its answers
/// is a slow reader at best and an attacker at worst; past this bound
/// the connection is closed (`faults/serve/queue_overflow_closed`)
/// instead of buffering without limit.
pub(crate) const OUT_QUEUE_CAP: usize = 64 * 1024;

/// Per-connection, per-readiness-event read budget. One firehose
/// connection may fill at most this many bytes before the shard moves on
/// to its siblings' events; the level-triggered reactor re-reports the
/// leftover on the next wait, so ingress bandwidth is shared round-robin
/// instead of drained connection-by-connection.
const READ_BUDGET: usize = 16 * 1024;

/// The state shared by every shard of one logical server: the swappable
/// oracle, global stats, the policy estimator, the reload context and
/// the stop signal. Each shard — an OS thread in the socket server, a
/// simulation cell in `beware simserve` — derives its per-shard
/// [`Engine`] with [`engine`](EngineCore::engine).
pub struct EngineCore {
    handle: OracleHandle,
    stop: Arc<StopSignal>,
    stats: Arc<GlobalStats>,
    policy: Option<Arc<PolicyCtx>>,
    reload: Arc<ReloadCtx>,
}

impl EngineCore {
    /// Assemble the shared plane. `policy` switches the query path to an
    /// online estimator fed by `Report` frames; `reload_from` names the
    /// snapshot source `Reload` admin frames load (None disables the
    /// reload plane).
    pub fn new(
        oracle: impl Into<OracleHandle>,
        stop: Arc<StopSignal>,
        policy: Option<PolicyKind>,
        reload_from: Option<PathBuf>,
    ) -> EngineCore {
        let handle = oracle.into();
        let reload = Arc::new(ReloadCtx {
            handle: handle.clone(),
            source: reload_from,
            lock: Mutex::new(()),
        });
        EngineCore {
            handle,
            stop,
            stats: Arc::new(GlobalStats::default()),
            policy: policy.map(|kind| Arc::new(PolicyCtx::new(kind))),
            reload,
        }
    }

    /// The swappable oracle slot this server answers from.
    pub fn oracle(&self) -> &OracleHandle {
        &self.handle
    }

    /// The stop signal a `Shutdown` frame raises.
    pub fn stop_signal(&self) -> &Arc<StopSignal> {
        &self.stop
    }

    pub(crate) fn reload_source(&self) -> Option<&PathBuf> {
        self.reload.source.as_ref()
    }

    /// One shard's engine over this shared plane. `clock` stamps request
    /// service time; `out_queue_cap` bounds each connection's unsent
    /// reply bytes.
    pub fn engine(&self, clock: SharedClock, out_queue_cap: usize) -> Engine {
        Engine {
            reader: self.handle.reader(),
            reload: Arc::clone(&self.reload),
            policy: self
                .policy
                .as_ref()
                .map(|ctx| PolicyPlane { reader: ctx.table.reader(), ctx: Arc::clone(ctx) }),
            stop: Arc::clone(&self.stop),
            stats: Arc::clone(&self.stats),
            cache: HashMap::new(),
            cache_version: 0,
            scratch: vec![0u8; 4096].into_boxed_slice(),
            clock,
            out_queue_cap,
        }
    }
}

/// One shard's protocol state machine. Owns no connections and no
/// reactor — callers pump it with [`service`](Engine::service) when a
/// connection has readable bytes and [`flush`](Engine::flush) when it
/// can write, whatever "readable" means on their transport.
pub struct Engine {
    reader: OracleReader,
    reload: Arc<ReloadCtx>,
    policy: Option<PolicyPlane>,
    stop: Arc<StopSignal>,
    stats: Arc<GlobalStats>,
    cache: HashMap<(u32, u16, u16), Message>,
    /// Snapshot version the cache's entries were answered from; a swap
    /// invalidates them wholesale (see `handle_request`).
    cache_version: u64,
    scratch: Box<[u8]>,
    clock: SharedClock,
    out_queue_cap: usize,
}

impl Engine {
    /// The serving snapshot version (refreshing the reader's view).
    pub fn snapshot_version(&mut self) -> u64 {
        self.reader.version()
    }

    /// One wheel-scheduled poll of the reload source. A read failure is
    /// transient by assumption (the file is mid-copy or not yet dropped)
    /// and counted under `sched/`; decode and apply failures are
    /// operator mistakes and land under `oracle/` where dashboards
    /// watch.
    pub fn poll_reload(&mut self, reg: &mut Registry) {
        let Some(path) = self.reload.source.as_ref() else { return };
        let Ok(bytes) = std::fs::read(path) else {
            reg.scope("sched").scope("serve").incr("reload_poll_errors");
            return;
        };
        match apply_reload(&self.reload, &bytes, None) {
            ReloadOutcome::Swapped { version, .. } => {
                let mut oracle_scope = reg.scope("oracle");
                oracle_scope.incr("reloads");
                oracle_scope.gauge_max("snapshot_version", version);
            }
            ReloadOutcome::Unchanged => {}
            ReloadOutcome::Stale => {
                reg.scope("oracle").incr("stale_delta_rejected");
            }
            ReloadOutcome::Rejected => {
                reg.scope("oracle").incr("reload_failures");
            }
        }
    }

    /// Nonblocking drain of one connection's output queue. Never waits:
    /// a full peer window surfaces as `faults/serve/write_backpressure`
    /// plus a writable-interest registration, and the remaining bytes
    /// stay queued until the caller learns the transport is writable
    /// again.
    pub fn flush<T: Transport>(&mut self, conn: &mut Conn<T>, reg: &mut Registry) -> bool {
        let mut progress = false;
        while conn.open && conn.out_pos < conn.out.len() {
            match conn.transport.write_nb(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.open = false;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    reg.scope("faults").scope("serve").incr("write_backpressure");
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.open = false;
                }
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_after_flush {
                conn.open = false;
            }
        } else if conn.out_pos >= self.out_queue_cap / 2 {
            // Keep the queue's memory proportional to the *unsent* bytes.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        progress
    }

    /// Pump one connection: read what is available (bounded by
    /// [`READ_BUDGET`]), decode, and queue a reply for every complete
    /// frame. Returns true when any byte moved.
    pub fn service<T: Transport>(&mut self, conn: &mut Conn<T>, reg: &mut Registry) -> bool {
        let mut progress = false;
        let mut budget = READ_BUDGET;
        // EOF is recorded, not acted on inline: requests that arrived
        // before the peer half-closed still deserve answers (over an
        // in-sim channel the final frame and the close are visible in
        // the same pass).
        let mut saw_eof = false;
        while conn.open && !conn.close_after_flush {
            if budget == 0 {
                // Fairness: leave the rest for the next readiness report
                // so a firehose peer cannot starve its shard siblings.
                reg.scope("sched").scope("serve").incr("read_budget_deferrals");
                break;
            }
            let want = self.scratch.len().min(budget);
            match conn.transport.read_nb(&mut self.scratch[..want]) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    budget -= n;
                    reg.scope("serve").add("bytes_in", n as u64);
                    conn.buf.extend_from_slice(&self.scratch[..n]);
                    conn.touched = true;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.open = false;
                    break;
                }
            }
        }

        let mut consumed = 0usize;
        while conn.open && !conn.close_after_flush {
            match proto::try_decode(&conn.buf[consumed..]) {
                Ok(Some((msg, used))) => {
                    consumed += used;
                    let t0 = self.clock.now();
                    let (reply, close) = self.handle_request(&msg, reg);
                    let frame = proto::encode(&reply);
                    reg.scope("serve").add("bytes_out", frame.len() as u64);
                    self.enqueue_reply(conn, &frame, reg);
                    let ns = u64::try_from(self.clock.since(t0).as_nanos()).unwrap_or(u64::MAX);
                    reg.scope("walltime").scope("serve").observe("request_ns", ns);
                    if close {
                        conn.close_after_flush = true;
                    }
                    progress = true;
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost: queue one error report, then close
                    // once it has drained.
                    reg.scope("serve").incr("proto_errors");
                    let code = match e {
                        ProtoError::Version(_) => ErrorCode::BadVersion,
                        _ => ErrorCode::Malformed,
                    };
                    let frame = proto::encode(&Message::Error { code });
                    reg.scope("serve").add("bytes_out", frame.len() as u64);
                    self.enqueue_reply(conn, &frame, reg);
                    conn.close_after_flush = true;
                    progress = true;
                }
            }
        }
        conn.buf.drain(..consumed);
        if saw_eof && conn.open {
            if conn.backlog() > 0 {
                conn.close_after_flush = true;
            } else {
                conn.open = false;
            }
        }
        progress
    }

    /// Queue a reply frame on a connection, enforcing the output bound.
    /// A peer that has let the cap's worth of bytes pile up is cut off.
    fn enqueue_reply<T>(&self, conn: &mut Conn<T>, frame: &[u8], reg: &mut Registry) {
        if conn.backlog() + frame.len() > self.out_queue_cap {
            reg.scope("faults").scope("serve").incr("queue_overflow_closed");
            conn.open = false;
            return;
        }
        conn.out.extend_from_slice(frame);
    }

    /// Dispatch one decoded request. Returns the reply and whether the
    /// connection should close afterwards.
    fn handle_request(&mut self, msg: &Message, reg: &mut Registry) -> (Message, bool) {
        let mut serve = reg.scope("serve");
        serve.incr("requests");
        match *msg {
            Message::Query { addr, addr_pct_tenths, ping_pct_tenths } => {
                serve.incr("queries");
                self.stats.queries.fetch_add(1, Ordering::Relaxed);
                if let Some(plane) = self.policy.as_mut() {
                    // Policy mode: answer from the last published
                    // estimator table. Coverage percentiles don't apply
                    // to an online estimate; they are accepted and
                    // ignored so clients need no mode-specific query. No
                    // reply cache either — the table turns over every
                    // few reports, so a cache would mostly serve
                    // invalidation.
                    let table = plane.reader.current();
                    let ans = table.lookup(addr);
                    let (status, prefix, prefix_len) = if ans.exact {
                        (Status::Exact, addr & prefix_mask(table.prefix_len()), table.prefix_len())
                    } else {
                        (Status::Fallback, 0, 0)
                    };
                    bump_hit(&self.stats, reg, status);
                    return (
                        Message::Answer {
                            status,
                            timeout_bits: ans.timeout_secs.to_bits(),
                            prefix,
                            prefix_len,
                        },
                        false,
                    );
                }
                // Resolve the oracle exactly once; the whole answer comes
                // from this one immutable snapshot, so a swap mid-request
                // can never produce a torn reply.
                let oracle = Arc::clone(self.reader.current());
                if self.reader.version() != self.cache_version {
                    // Cached replies belong to the previous snapshot.
                    self.cache.clear();
                    self.cache_version = self.reader.version();
                }
                let key = (addr, addr_pct_tenths, ping_pct_tenths);
                if let Some(&cached) = self.cache.get(&key) {
                    reg.scope("sched").scope("serve").incr("cache_hits");
                    // Deterministic per-request counters must not depend
                    // on whether this shard's cache happened to hold the
                    // reply.
                    match cached {
                        Message::Answer { status, .. } => bump_hit(&self.stats, reg, status),
                        Message::Error { .. } => {
                            reg.scope("serve").incr("errors_unsupported_pct");
                        }
                        _ => {}
                    }
                    return (cached, false);
                }
                reg.scope("sched").scope("serve").incr("cache_misses");
                let reply = match oracle.lookup(addr, addr_pct_tenths, ping_pct_tenths) {
                    Ok(ans) => {
                        bump_hit(&self.stats, reg, ans.status);
                        Message::Answer {
                            status: ans.status,
                            timeout_bits: ans.timeout_bits,
                            prefix: ans.prefix,
                            prefix_len: ans.prefix_len,
                        }
                    }
                    Err(LookupError::UnsupportedAddressPercentile(_))
                    | Err(LookupError::UnsupportedPingPercentile(_)) => {
                        reg.scope("serve").incr("errors_unsupported_pct");
                        Message::Error { code: ErrorCode::UnsupportedPercentile }
                    }
                };
                if self.cache.len() >= CACHE_CAP {
                    self.cache.clear();
                }
                self.cache.insert(key, reply);
                (reply, false)
            }
            Message::Stats => {
                serve.incr("stats_requests");
                (
                    Message::StatsReply {
                        queries: self.stats.queries.load(Ordering::Relaxed),
                        hits_exact: self.stats.hits_exact.load(Ordering::Relaxed),
                        hits_fallback: self.stats.hits_fallback.load(Ordering::Relaxed),
                    },
                    false,
                )
            }
            Message::SnapshotInfo => {
                serve.incr("info_requests");
                // `current()` refreshes the cached pair under the slot
                // lock, so the (version, oracle) this reply reports is
                // consistent.
                let oracle = Arc::clone(self.reader.current());
                (
                    Message::SnapshotInfoReply {
                        version: self.reader.version(),
                        entries: oracle.entry_count() as u32,
                        checksum: oracle.checksum(),
                    },
                    false,
                )
            }
            Message::Reload { kind } => {
                serve.incr("reload_requests");
                (admin_reload(kind, &self.reload, reg), false)
            }
            Message::Report { addr, rtt_us } => {
                serve.incr("report_requests");
                match self.policy.as_ref() {
                    Some(plane) => {
                        let reports = plane.ctx.absorb(addr, rtt_us, &self.stats);
                        (Message::ReportAck { reports }, false)
                    }
                    None => {
                        reg.scope("serve").incr("errors_policy_unavailable");
                        (Message::Error { code: ErrorCode::PolicyUnavailable }, false)
                    }
                }
            }
            Message::Shutdown => {
                serve.incr("shutdown_requests");
                // Raise the flag *and* ring every shard and the acceptor
                // — they are blocked in their reactors, not polling a
                // flag.
                self.stop.request_stop();
                (Message::ShutdownAck, true)
            }
            // A reply opcode arriving as a request is a confused client.
            _ => {
                serve.incr("errors_bad_request");
                (Message::Error { code: ErrorCode::UnknownOpcode }, false)
            }
        }
    }
}

fn bump_hit(stats: &GlobalStats, reg: &mut Registry, status: Status) {
    match status {
        Status::Exact => {
            stats.hits_exact.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_exact");
        }
        Status::Fallback => {
            stats.hits_fallback.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_fallback");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_snapshot, SnapshotCfg};
    use beware_core::percentile::LatencySamples;
    use beware_runtime::clock::VirtualClock;
    use std::collections::BTreeMap;

    fn test_oracle() -> Oracle {
        let mut blocks = BTreeMap::new();
        blocks.insert(0x0a000001u32, LatencySamples::from_values(vec![0.05; 50]));
        let cfg = SnapshotCfg { min_addresses: 1, ..SnapshotCfg::default() };
        let snap = build_snapshot(&blocks, &cfg).expect("snapshot builds");
        Oracle::from_snapshot(snap).expect("oracle builds")
    }

    fn engine_over(core: &EngineCore) -> Engine {
        core.engine(VirtualClock::new().handle(), OUT_QUEUE_CAP)
    }

    #[test]
    fn channel_transport_round_trips_a_query() {
        let core = EngineCore::new(test_oracle(), Arc::new(StopSignal::new()), None, None);
        let mut engine = engine_over(&core);
        let (server_side, peer) = channel_pair();
        let mut conn = Conn::new(0, server_side);
        let mut reg = Registry::new();

        peer.send(&proto::encode(&Message::Query {
            addr: 0x0a000001,
            addr_pct_tenths: 500,
            ping_pct_tenths: 500,
        }));
        assert!(engine.service(&mut conn, &mut reg));
        assert!(conn.backlog() > 0, "reply queued");
        assert!(engine.flush(&mut conn, &mut reg));

        let mut bytes = Vec::new();
        peer.drain(&mut bytes);
        let (reply, used) = proto::try_decode(&bytes).expect("decodes").expect("complete");
        assert_eq!(used, bytes.len());
        match reply {
            Message::Answer { status, .. } => assert_eq!(status, Status::Exact),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(reg.counter("serve/queries"), Some(1));
    }

    #[test]
    fn identical_logic_over_channel_and_socket_transport_types() {
        // The point of the seam: one Engine type serves both. This pins
        // that TcpStream actually implements Transport (compile-time)
        // and that the channel path produces byte-identical frames to a
        // direct encode of the expected reply.
        fn assert_transport<T: Transport>() {}
        assert_transport::<TcpStream>();
        assert_transport::<ChannelTransport>();

        let core = EngineCore::new(test_oracle(), Arc::new(StopSignal::new()), None, None);
        let mut engine = engine_over(&core);
        let (server_side, peer) = channel_pair();
        let mut conn = Conn::new(7, server_side);
        let mut reg = Registry::new();
        peer.send(&proto::encode(&Message::SnapshotInfo));
        engine.service(&mut conn, &mut reg);
        engine.flush(&mut conn, &mut reg);
        let mut bytes = Vec::new();
        peer.drain(&mut bytes);
        let oracle = core.oracle().current();
        let expect = proto::encode(&Message::SnapshotInfoReply {
            version: 1,
            entries: oracle.entry_count() as u32,
            checksum: oracle.checksum(),
        });
        assert_eq!(bytes, expect, "frame bytes identical to the socket server's");
    }

    #[test]
    fn peer_close_is_seen_after_drain() {
        let core = EngineCore::new(test_oracle(), Arc::new(StopSignal::new()), None, None);
        let mut engine = engine_over(&core);
        let (server_side, peer) = channel_pair();
        let mut conn = Conn::new(1, server_side);
        let mut reg = Registry::new();
        peer.send(&proto::encode(&Message::Stats));
        peer.close();
        assert!(engine.service(&mut conn, &mut reg));
        // The queued request was still answered; the next service pass
        // observes EOF and closes.
        assert!(conn.backlog() > 0);
        engine.flush(&mut conn, &mut reg);
        engine.service(&mut conn, &mut reg);
        assert!(!conn.is_open());
    }

    #[test]
    fn shutdown_frame_raises_the_shared_stop_signal() {
        let stop = Arc::new(StopSignal::new());
        let core = EngineCore::new(test_oracle(), Arc::clone(&stop), None, None);
        let mut engine = engine_over(&core);
        let (server_side, peer) = channel_pair();
        let mut conn = Conn::new(2, server_side);
        let mut reg = Registry::new();
        peer.send(&proto::encode(&Message::Shutdown));
        engine.service(&mut conn, &mut reg);
        assert!(stop.is_stopped());
        assert!(conn.close_after_flush);
        engine.flush(&mut conn, &mut reg);
        assert!(!conn.is_open(), "closes once the ack drained");
        let mut bytes = Vec::new();
        peer.drain(&mut bytes);
        let (reply, _) = proto::try_decode(&bytes).unwrap().unwrap();
        assert!(matches!(reply, Message::ShutdownAck));
    }

    #[test]
    fn policy_plane_works_over_channels() {
        let core = EngineCore::new(
            test_oracle(),
            Arc::new(StopSignal::new()),
            Some(PolicyKind::JacobsonKarn),
            None,
        );
        let mut engine = engine_over(&core);
        let (server_side, peer) = channel_pair();
        let mut conn = Conn::new(3, server_side);
        let mut reg = Registry::new();
        peer.send(&proto::encode(&Message::Report { addr: 0x0a000001, rtt_us: 50_000 }));
        peer.send(&proto::encode(&Message::Query {
            addr: 0x0a000001,
            addr_pct_tenths: 500,
            ping_pct_tenths: 500,
        }));
        engine.service(&mut conn, &mut reg);
        engine.flush(&mut conn, &mut reg);
        let mut bytes = Vec::new();
        peer.drain(&mut bytes);
        let (ack, used) = proto::try_decode(&bytes).unwrap().unwrap();
        assert!(matches!(ack, Message::ReportAck { reports: 1 }));
        let (answer, _) = proto::try_decode(&bytes[used..]).unwrap().unwrap();
        match answer {
            Message::Answer { status, timeout_bits, .. } => {
                assert_eq!(status, Status::Exact, "first report published the table");
                let secs = f64::from_bits(timeout_bits);
                assert!(secs > 0.0 && secs <= 60.0, "sane policy timeout, got {secs}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
