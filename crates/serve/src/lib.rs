//! # beware-serve
//!
//! A timeout-oracle service: the paper's offline analysis, packaged as a
//! long-running daemon. The pipeline's per-address latency samples are
//! compiled into a canonical snapshot of per-prefix timeout tables
//! ([`builder`]), loaded into an immutable longest-prefix-match
//! [`Oracle`], and served over a compact checksummed binary protocol
//! ([`proto`]) by a sharded thread-per-core TCP server ([`server`]).
//! The protocol state machine itself lives in [`engine`], behind a
//! [`Transport`] seam, so the identical oracle+policy logic also runs
//! over in-memory channels inside the netsim (`beware simserve`).
//! A blocking [`client`] library and a closed-loop [`loadgen`] complete
//! the loop.
//!
//! Two properties are load-bearing:
//!
//! * **Byte-exact answers.** Every served cell is the `f64` the offline
//!   `TimeoutTable::compute_at` produced, shipped as raw bits end to end
//!   — a served answer equals `recommend_timeout` bit for bit.
//! * **Deterministic metrics.** Per-shard telemetry registries are merged
//!   in fixed shard order, and scheduling-dependent counters live in the
//!   `sched/` family the JSON export excludes, so `--metrics` output is
//!   byte-identical across shard counts.
//!
//! The service also applies the paper's lesson to itself: connections are
//! read with bounded timeouts, never waited on indefinitely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod client;
pub mod engine;
pub mod loadgen;
pub mod oracle;
pub mod proto;
pub mod server;
pub mod swap;

pub use builder::{build_snapshot, SnapshotCfg};
pub use client::{Answer, Client, ClientError, ServerStats, SnapshotInfo};
pub use engine::{
    channel_pair, ChannelPeer, ChannelTransport, Conn, Engine, EngineCore, Transport,
};
pub use loadgen::{LoadCfg, LoadReport, ReloadCfg, ReloadReport};
pub use oracle::{Lookup, LookupError, Oracle, OracleError};
pub use proto::{ErrorCode, Message, ProtoError, ReloadKind, Status, PROTO_VERSION};
pub use server::{start, ConfigError, ServerCfg, ServerCfgBuilder, ServerHandle};
pub use swap::{OracleHandle, OracleReader};
