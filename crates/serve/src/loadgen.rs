//! Closed-loop load generator for the oracle service.
//!
//! `workers` threads each open one connection and issue
//! `requests_per_worker` queries back-to-back (closed loop: the next
//! request waits for the previous answer), drawing addresses from a
//! shared pool with a per-worker deterministic SplitMix64 stream
//! (`beware_runtime::rng` — the workspace's one implementation). Wall
//! time and per-request latencies are collected and summarised into a
//! [`LoadReport`] with nearest-rank percentiles, rendered as the
//! `BENCH_3.json` schema.

use crate::client::{Client, ClientError};
use crate::oracle::Oracle;
use beware_runtime::clock::{SharedClock, WallClock};
use beware_runtime::process_cpu_time;
use beware_runtime::rng::SplitMix64;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadCfg {
    /// Concurrent closed-loop workers (≥ 1).
    pub workers: usize,
    /// Requests each worker issues.
    pub requests_per_worker: usize,
    /// Addresses to draw from, uniformly at random.
    pub addr_pool: Vec<u32>,
    /// Address-percentile level queried, tenths of a percent.
    pub addr_pct_tenths: u16,
    /// Ping-percentile level queried, tenths of a percent.
    pub ping_pct_tenths: u16,
    /// Seed for the per-worker address streams.
    pub seed: u64,
    /// Socket read timeout per request.
    pub read_timeout: Duration,
    /// After each successful query, feed the measured round-trip back to
    /// the server as a `Report` frame — the closed loop a policy-mode
    /// server (`beware serve --policy`) learns from. Reports that the
    /// server rejects (snapshot-only mode) count as errors.
    pub report_rtts: bool,
}

impl Default for LoadCfg {
    fn default() -> Self {
        LoadCfg {
            workers: 4,
            requests_per_worker: 1000,
            addr_pool: Vec::new(),
            addr_pct_tenths: 950,
            ping_pct_tenths: 950,
            seed: 0xbe0a_2e11,
            read_timeout: Duration::from_secs(5),
            report_rtts: false,
        }
    }
}

/// Summary of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Workers that ran.
    pub workers: usize,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// RTT reports acknowledged by the server (0 unless
    /// [`LoadCfg::report_rtts`]).
    pub reports: u64,
    /// Wall time of the measured window, seconds.
    pub wall_secs: f64,
    /// Successful requests per wall-clock second.
    pub throughput_rps: f64,
    /// Latency percentiles (nearest-rank) and extremes, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Fastest request, microseconds.
    pub min_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

impl LoadReport {
    /// Render as the `BENCH_3.json` document (schema 1). Hand-rendered:
    /// the workspace is hermetic and the schema is flat.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema\": 1,\n",
                "  \"bench\": \"serve_loadgen\",\n",
                "  \"workers\": {},\n",
                "  \"requests\": {},\n",
                "  \"errors\": {},\n",
                "  \"reports\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"throughput_rps\": {:.3},\n",
                "  \"latency_us\": {{\n",
                "    \"p50\": {},\n",
                "    \"p99\": {},\n",
                "    \"p999\": {},\n",
                "    \"min\": {},\n",
                "    \"max\": {},\n",
                "    \"mean\": {:.3}\n",
                "  }}\n",
                "}}\n",
            ),
            self.workers,
            self.requests,
            self.errors,
            self.reports,
            self.wall_secs,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.min_us,
            self.max_us,
            self.mean_us,
        )
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "{} workers, {} ok / {} err in {:.3}s — {:.0} req/s, p50 {}µs p99 {}µs p99.9 {}µs",
            self.workers,
            self.requests,
            self.errors,
            self.wall_secs,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice, on the same
/// snapped-ceil rank as the offline tables (an inline ceil drifts one
/// rank high when `q × n` is integral, e.g. p50 of 10 samples).
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[beware_core::nearest_rank(q / 100.0, sorted_us.len()) - 1]
}

/// Run the load against a server at `addr`, stamping latencies and the
/// measured window on the wall clock.
pub fn run(addr: SocketAddr, cfg: &LoadCfg) -> Result<LoadReport, String> {
    run_with_clock(addr, cfg, WallClock::shared())
}

/// [`run`] with every RTT stamp and the wall window measured on `clock`.
/// Worker address streams draw from the workspace's canonical SplitMix64
/// (`beware_runtime::rng`), so the query sequence per `(seed, worker)` is
/// clock-independent.
pub fn run_with_clock(
    addr: SocketAddr,
    cfg: &LoadCfg,
    clock: SharedClock,
) -> Result<LoadReport, String> {
    if cfg.workers == 0 || cfg.requests_per_worker == 0 {
        return Err("workers and requests_per_worker must be >= 1".into());
    }
    if cfg.addr_pool.is_empty() {
        return Err("address pool is empty".into());
    }

    // Connect everyone first, then release all workers at once so the
    // measured window contains only request traffic.
    let barrier = Arc::new(Barrier::new(cfg.workers + 1));
    let pool = Arc::new(cfg.addr_pool.clone());
    let mut handles = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let barrier = Arc::clone(&barrier);
        let pool = Arc::clone(&pool);
        let cfg = cfg.clone();
        let clock = Arc::clone(&clock);
        handles.push(std::thread::spawn(move || -> Result<(Vec<u64>, u64, u64), String> {
            let conn = Client::connect_retry(addr, cfg.read_timeout, Duration::from_secs(2));
            // Reach the barrier whether or not the connect worked — the
            // coordinator and every sibling is parked on it.
            barrier.wait();
            let mut client = conn.map_err(|e| format!("worker {w}: connect: {e}"))?;
            let mut rng =
                SplitMix64::new(cfg.seed ^ (w as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            let mut lat = Vec::with_capacity(cfg.requests_per_worker);
            let mut errors = 0u64;
            let mut reports = 0u64;
            for _ in 0..cfg.requests_per_worker {
                let a = pool[(rng.next_u64() % pool.len() as u64) as usize];
                let t0 = clock.now();
                match client.query(a, cfg.addr_pct_tenths, cfg.ping_pct_tenths) {
                    Ok(_) => {
                        let us = u64::try_from(clock.since(t0).as_micros()).unwrap_or(u64::MAX);
                        lat.push(us);
                        if cfg.report_rtts {
                            let rtt = u32::try_from(us).unwrap_or(u32::MAX);
                            match client.report(a, rtt) {
                                Ok(_) => reports += 1,
                                Err(ClientError::Io(e)) => {
                                    return Err(format!("worker {w}: i/o mid-run: {e}"));
                                }
                                Err(_) => errors += 1,
                            }
                        }
                    }
                    Err(ClientError::Io(e)) => {
                        // The connection is gone; bail rather than spin.
                        return Err(format!("worker {w}: i/o mid-run: {e}"));
                    }
                    Err(_) => errors += 1,
                }
            }
            Ok((lat, errors, reports))
        }));
    }

    barrier.wait();
    let t0 = clock.now();
    let mut all = Vec::with_capacity(cfg.workers * cfg.requests_per_worker);
    let mut errors = 0u64;
    let mut reports = 0u64;
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("loadgen worker panicked") {
            Ok((lat, e, r)) => {
                all.extend_from_slice(&lat);
                errors += e;
                reports += r;
            }
            Err(msg) => failures.push(msg),
        }
    }
    let wall = clock.since(t0).as_secs_f64();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    all.sort_unstable();
    let sum: u64 = all.iter().sum();
    Ok(LoadReport {
        workers: cfg.workers,
        requests: all.len() as u64,
        errors,
        reports,
        wall_secs: wall,
        throughput_rps: if wall > 0.0 { all.len() as f64 / wall } else { 0.0 },
        p50_us: percentile(&all, 50.0),
        p99_us: percentile(&all, 99.0),
        p999_us: percentile(&all, 99.9),
        min_us: all.first().copied().unwrap_or(0),
        max_us: all.last().copied().unwrap_or(0),
        mean_us: if all.is_empty() { 0.0 } else { sum as f64 / all.len() as f64 },
    })
}

/// Mass-connection run parameters: a pool of `conns` connections that
/// are opened and then held **idle**, plus a hot subset of
/// `hot_workers` closed-loop workers issuing requests — the shape the
/// readiness-driven serve path exists for. The interesting numbers are
/// the ones a spin-polling server cannot produce: near-zero process CPU
/// while only the idle pool is connected, and a CPU-per-request figure
/// that does not grow with the number of parked connections.
#[derive(Debug, Clone)]
pub struct MassCfg {
    /// Idle connections to open and hold for the whole run.
    pub conns: usize,
    /// Closed-loop workers in the hot subset (each opens its own
    /// connection on top of the idle pool).
    pub hot_workers: usize,
    /// Requests each hot worker issues.
    pub requests_per_worker: usize,
    /// Addresses the hot workers draw from.
    pub addr_pool: Vec<u32>,
    /// Address-percentile level queried, tenths of a percent.
    pub addr_pct_tenths: u16,
    /// Ping-percentile level queried, tenths of a percent.
    pub ping_pct_tenths: u16,
    /// Seed for the hot workers' address streams.
    pub seed: u64,
    /// Socket read timeout per hot request.
    pub read_timeout: Duration,
    /// Wall-clock window over which idle CPU is sampled, after the pool
    /// is open and before any hot traffic.
    pub idle_settle: Duration,
    /// The server's shard count — recorded so the report can state the
    /// connections-per-shard load (the benchmark driver knows it; a
    /// remote server's client does not, so pass 0 for "unknown").
    pub shards: usize,
}

impl Default for MassCfg {
    fn default() -> Self {
        MassCfg {
            conns: 1000,
            hot_workers: 4,
            requests_per_worker: 1000,
            addr_pool: Vec::new(),
            addr_pct_tenths: 950,
            ping_pct_tenths: 950,
            seed: 0xbe0a_2e11,
            read_timeout: Duration::from_secs(5),
            idle_settle: Duration::from_millis(500),
            shards: 0,
        }
    }
}

/// Summary of one mass-connection run at one connection scale.
#[derive(Debug, Clone)]
pub struct MassReport {
    /// Idle connections held open through the run.
    pub conns: usize,
    /// Server shard count (0 when unknown).
    pub shards: usize,
    /// `conns / shards` (0 when the shard count is unknown).
    pub conns_per_shard: f64,
    /// Process CPU consumed during the idle window, as a percentage of
    /// the window's wall time. `None` where the platform offers no
    /// process-CPU clock — and meaningful only when the server runs in
    /// this process (the benchmark driver's in-process mode).
    pub idle_cpu_pct: Option<f64>,
    /// Process CPU per successful request during the hot phase,
    /// microseconds. In in-process mode this prices the whole loop —
    /// server shards *and* the client workers driving them.
    pub cpu_per_request_us: Option<f64>,
    /// The hot subset's closed-loop summary.
    pub load: LoadReport,
}

impl MassReport {
    /// Render as one entry of the `BENCH_4.json` `runs` array.
    fn to_json_entry(&self) -> String {
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "    {{\n",
                "      \"conns\": {},\n",
                "      \"shards\": {},\n",
                "      \"conns_per_shard\": {:.1},\n",
                "      \"idle_cpu_pct\": {},\n",
                "      \"cpu_per_request_us\": {},\n",
                "      \"hot_workers\": {},\n",
                "      \"requests\": {},\n",
                "      \"errors\": {},\n",
                "      \"throughput_rps\": {:.3},\n",
                "      \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {} }}\n",
                "    }}",
            ),
            self.conns,
            self.shards,
            self.conns_per_shard,
            fmt_opt(self.idle_cpu_pct),
            fmt_opt(self.cpu_per_request_us),
            self.load.workers,
            self.load.requests,
            self.load.errors,
            self.load.throughput_rps,
            self.load.p50_us,
            self.load.p99_us,
            self.load.p999_us,
        )
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        let idle = match self.idle_cpu_pct {
            Some(p) => format!("{p:.2}% idle CPU"),
            None => "idle CPU n/a".into(),
        };
        let per_req = match self.cpu_per_request_us {
            Some(us) => format!("{us:.1}µs CPU/req"),
            None => "CPU/req n/a".into(),
        };
        format!(
            "{} idle conns ({:.0}/shard): {} — hot: {:.0} req/s, p50 {}µs p99 {}µs p99.9 {}µs, {}",
            self.conns,
            self.conns_per_shard,
            idle,
            self.load.throughput_rps,
            self.load.p50_us,
            self.load.p99_us,
            self.load.p999_us,
            per_req,
        )
    }
}

/// Render a sweep of mass-connection runs as the `BENCH_4.json` document
/// (schema 1).
pub fn mass_sweep_json(runs: &[MassReport]) -> String {
    let entries: Vec<String> = runs.iter().map(MassReport::to_json_entry).collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": 1,\n",
            "  \"bench\": \"serve_mass_conns\",\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n",
        ),
        entries.join(",\n"),
    )
}

/// Open `n` connections and hold them (the caller keeps the pool alive
/// for the duration of the measurement).
///
/// Uses `connect_timeout` with a short deadline on purpose: a connect
/// storm occasionally overflows the listener's accept queue, the kernel
/// drops the SYN, and a plain blocking `connect` then sits out the full
/// 1 s TCP retransmit timer — the paper's "surprisingly high delay"
/// biting its own benchmark. Capping the wait and retrying immediately
/// (the queue has long since drained) opens 5k connections in ~300 ms
/// instead of tens of seconds.
fn open_idle_pool(addr: SocketAddr, n: usize) -> Result<Vec<TcpStream>, String> {
    let mut pool = Vec::with_capacity(n);
    for i in 0..n {
        let mut attempts = 0u32;
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
                Ok(s) => {
                    // Idle conns never write; nodelay only matters for
                    // symmetry with the served side's accept path.
                    let _ = s.set_nodelay(true);
                    pool.push(s);
                    break;
                }
                Err(e) if attempts < 200 => {
                    attempts += 1;
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(format!(
                        "idle connection {i}/{n} failed after {attempts} retries: {e} \
                         (fd limit? `ulimit -n`)"
                    ));
                }
            }
        }
    }
    Ok(pool)
}

/// Run one mass-connection measurement against a server at `addr`:
/// open the idle pool, sample process CPU over a quiet settle window,
/// then drive the hot subset closed-loop and price its requests in CPU.
///
/// The CPU figures come from `CLOCK_PROCESS_CPUTIME_ID`, so they are
/// meaningful when the server runs **in this process** (the `beware
/// loadgen --conns` driver starts one); against a remote server they
/// measure only the client side and the driver reports them as such.
pub fn run_mass(addr: SocketAddr, cfg: &MassCfg) -> Result<MassReport, String> {
    if cfg.conns == 0 {
        return Err("mass run needs --conns >= 1".into());
    }
    let clock: SharedClock = WallClock::shared();
    let pool = open_idle_pool(addr, cfg.conns)?;

    // Let the acceptor finish handing the pool to the shards and the
    // shards park again before the idle window opens.
    std::thread::sleep(Duration::from_millis(100));
    let idle_cpu0 = process_cpu_time();
    let idle_t0 = clock.now();
    std::thread::sleep(cfg.idle_settle);
    let idle_wall = clock.since(idle_t0).as_secs_f64();
    let idle_cpu_pct = match (idle_cpu0, process_cpu_time()) {
        (Some(a), Some(b)) if idle_wall > 0.0 => {
            Some(100.0 * b.saturating_sub(a).as_secs_f64() / idle_wall)
        }
        _ => None,
    };

    let load_cfg = LoadCfg {
        workers: cfg.hot_workers,
        requests_per_worker: cfg.requests_per_worker,
        addr_pool: cfg.addr_pool.clone(),
        addr_pct_tenths: cfg.addr_pct_tenths,
        ping_pct_tenths: cfg.ping_pct_tenths,
        seed: cfg.seed,
        read_timeout: cfg.read_timeout,
        report_rtts: false,
    };
    let hot_cpu0 = process_cpu_time();
    let load = run_with_clock(addr, &load_cfg, Arc::clone(&clock))?;
    let cpu_per_request_us = match (hot_cpu0, process_cpu_time()) {
        (Some(a), Some(b)) if load.requests > 0 => {
            Some(b.saturating_sub(a).as_secs_f64() * 1e6 / load.requests as f64)
        }
        _ => None,
    };
    drop(pool);

    Ok(MassReport {
        conns: cfg.conns,
        shards: cfg.shards,
        conns_per_shard: if cfg.shards > 0 { cfg.conns as f64 / cfg.shards as f64 } else { 0.0 },
        idle_cpu_pct,
        cpu_per_request_us,
        load,
    })
}

/// Reload-under-load run parameters: closed-loop workers hammer the
/// query path while the coordinator fires snapshot reloads through a
/// caller-supplied driver, and **every answer is verified bit-for-bit**
/// against the set of snapshot generations that could legitimately be
/// serving — the wire-level check of the no-torn-reads guarantee.
#[derive(Debug, Clone)]
pub struct ReloadCfg {
    /// Concurrent closed-loop workers (≥ 1). They run until the last
    /// reload (plus `cooldown`) lands, so every reload happens under
    /// load by construction.
    pub workers: usize,
    /// Addresses to draw from, uniformly at random.
    pub addr_pool: Vec<u32>,
    /// Address-percentile level queried, tenths of a percent.
    pub addr_pct_tenths: u16,
    /// Ping-percentile level queried, tenths of a percent.
    pub ping_pct_tenths: u16,
    /// Seed for the per-worker address streams.
    pub seed: u64,
    /// Socket read timeout per request.
    pub read_timeout: Duration,
    /// Reloads the coordinator fires.
    pub reloads: usize,
    /// Quiet gap before each reload, letting query traffic build up.
    pub reload_gap: Duration,
    /// Extra load after the final reload, so its aftermath is measured
    /// too.
    pub cooldown: Duration,
    /// Every snapshot generation the server could be serving at any
    /// point in the run. An answer is correct iff it byte-matches what
    /// **some** generation's oracle computes — old or new, never a
    /// mixture.
    pub truth: Vec<Oracle>,
}

impl Default for ReloadCfg {
    fn default() -> Self {
        ReloadCfg {
            workers: 4,
            addr_pool: Vec::new(),
            addr_pct_tenths: 950,
            ping_pct_tenths: 950,
            seed: 0xbe0a_2e11,
            read_timeout: Duration::from_secs(5),
            reloads: 4,
            reload_gap: Duration::from_millis(100),
            cooldown: Duration::from_millis(100),
            truth: Vec::new(),
        }
    }
}

/// Summary of one reload-under-load run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReloadReport {
    /// Workers that ran.
    pub workers: usize,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// Answers that matched **no** snapshot generation bit-for-bit —
    /// must be zero for the no-torn-reads guarantee to hold.
    pub wrong_answers: u64,
    /// Reloads that completed successfully.
    pub reloads: u64,
    /// Wall time of the measured window, seconds.
    pub wall_secs: f64,
    /// Successful requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median query latency with reloads in flight, microseconds.
    pub p50_us: u64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile query latency — the headline number: what a
    /// snapshot swap costs the tail, microseconds.
    pub p999_us: u64,
    /// Slowest query, microseconds.
    pub max_us: u64,
    /// Slowest reload round-trip (admin op, file read, swap),
    /// microseconds.
    pub reload_max_us: u64,
    /// Mean reload round-trip, microseconds.
    pub reload_mean_us: f64,
}

impl ReloadReport {
    /// Render as the `BENCH_5.json` document (schema 1).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"schema\": 1,\n",
                "  \"bench\": \"serve_reload\",\n",
                "  \"workers\": {},\n",
                "  \"requests\": {},\n",
                "  \"errors\": {},\n",
                "  \"wrong_answers\": {},\n",
                "  \"reloads\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"throughput_rps\": {:.3},\n",
                "  \"latency_us\": {{\n",
                "    \"p50\": {},\n",
                "    \"p99\": {},\n",
                "    \"p999\": {},\n",
                "    \"max\": {}\n",
                "  }},\n",
                "  \"reload_us\": {{ \"max\": {}, \"mean\": {:.3} }}\n",
                "}}\n",
            ),
            self.workers,
            self.requests,
            self.errors,
            self.wrong_answers,
            self.reloads,
            self.wall_secs,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
            self.reload_max_us,
            self.reload_mean_us,
        )
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "{} workers, {} ok / {} err / {} wrong across {} reloads in {:.3}s — \
             {:.0} req/s, p99.9 {}µs (reload max {}µs)",
            self.workers,
            self.requests,
            self.errors,
            self.wrong_answers,
            self.reloads,
            self.wall_secs,
            self.throughput_rps,
            self.p999_us,
            self.reload_max_us,
        )
    }
}

/// Does `ans` byte-match what some generation in `truth` would answer?
fn answer_in_truth_set(
    truth: &[Oracle],
    addr: u32,
    addr_pct_tenths: u16,
    ping_pct_tenths: u16,
    ans: &crate::client::Answer,
) -> bool {
    truth.iter().any(|o| match o.lookup(addr, addr_pct_tenths, ping_pct_tenths) {
        Ok(l) => {
            l.timeout_bits == ans.timeout_bits
                && l.status == ans.status
                && l.prefix == ans.prefix
                && l.prefix_len == ans.prefix_len
        }
        Err(_) => false,
    })
}

/// Drive query load while `do_reload` fires snapshot swaps: workers run
/// closed-loop from barrier-release until the last reload (plus
/// cooldown) has landed, verifying every answer against the truth set.
/// `do_reload(i)` performs the `i`-th reload end to end — typically
/// "write the next snapshot/delta file, send the `Reload` admin frame" —
/// and its round-trip is timed into the report.
pub fn run_reload(
    addr: SocketAddr,
    cfg: &ReloadCfg,
    mut do_reload: impl FnMut(usize) -> Result<(), String>,
) -> Result<ReloadReport, String> {
    if cfg.workers == 0 {
        return Err("workers must be >= 1".into());
    }
    if cfg.addr_pool.is_empty() {
        return Err("address pool is empty".into());
    }
    if cfg.truth.is_empty() {
        return Err("truth set is empty: nothing to verify answers against".into());
    }
    let clock: SharedClock = WallClock::shared();

    let barrier = Arc::new(Barrier::new(cfg.workers + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(cfg.addr_pool.clone());
    let truth = Arc::new(cfg.truth.clone());
    let mut handles = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        let pool = Arc::clone(&pool);
        let truth = Arc::clone(&truth);
        let cfg = cfg.clone();
        let clock = Arc::clone(&clock);
        handles.push(std::thread::spawn(move || -> Result<(Vec<u64>, u64, u64), String> {
            let conn = Client::connect_retry(addr, cfg.read_timeout, Duration::from_secs(2));
            barrier.wait();
            let mut client = conn.map_err(|e| format!("worker {w}: connect: {e}"))?;
            let mut rng =
                SplitMix64::new(cfg.seed ^ (w as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            let mut lat = Vec::new();
            let mut errors = 0u64;
            let mut wrong = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let a = pool[(rng.next_u64() % pool.len() as u64) as usize];
                let t0 = clock.now();
                match client.query(a, cfg.addr_pct_tenths, cfg.ping_pct_tenths) {
                    Ok(ans) => {
                        let us = u64::try_from(clock.since(t0).as_micros()).unwrap_or(u64::MAX);
                        lat.push(us);
                        if !answer_in_truth_set(
                            &truth,
                            a,
                            cfg.addr_pct_tenths,
                            cfg.ping_pct_tenths,
                            &ans,
                        ) {
                            wrong += 1;
                        }
                    }
                    Err(ClientError::Io(e)) => {
                        return Err(format!("worker {w}: i/o mid-run: {e}"));
                    }
                    Err(_) => errors += 1,
                }
            }
            Ok((lat, errors, wrong))
        }));
    }

    barrier.wait();
    let t0 = clock.now();
    let mut reload_us = Vec::with_capacity(cfg.reloads);
    let mut reload_err = None;
    for i in 0..cfg.reloads {
        clock.sleep(cfg.reload_gap);
        let r0 = clock.now();
        match do_reload(i) {
            Ok(()) => {
                reload_us.push(u64::try_from(clock.since(r0).as_micros()).unwrap_or(u64::MAX));
            }
            Err(e) => {
                reload_err = Some(format!("reload {i}: {e}"));
                break;
            }
        }
    }
    clock.sleep(cfg.cooldown);
    stop.store(true, Ordering::Relaxed);

    let mut all = Vec::new();
    let mut errors = 0u64;
    let mut wrong = 0u64;
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("reload loadgen worker panicked") {
            Ok((lat, e, wr)) => {
                all.extend_from_slice(&lat);
                errors += e;
                wrong += wr;
            }
            Err(msg) => failures.push(msg),
        }
    }
    let wall = clock.since(t0).as_secs_f64();
    if let Some(e) = reload_err {
        failures.push(e);
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    all.sort_unstable();
    let reload_sum: u64 = reload_us.iter().sum();
    Ok(ReloadReport {
        workers: cfg.workers,
        requests: all.len() as u64,
        errors,
        wrong_answers: wrong,
        reloads: reload_us.len() as u64,
        wall_secs: wall,
        throughput_rps: if wall > 0.0 { all.len() as f64 / wall } else { 0.0 },
        p50_us: percentile(&all, 50.0),
        p99_us: percentile(&all, 99.0),
        p999_us: percentile(&all, 99.9),
        max_us: all.last().copied().unwrap_or(0),
        reload_max_us: reload_us.iter().copied().max().unwrap_or(0),
        reload_mean_us: if reload_us.is_empty() {
            0.0
        } else {
            reload_sum as f64 / reload_us.len() as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 99.9), 100);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn worker_address_stream_is_deterministic() {
        // The worker seeding expression predates the RNG dedup; pin the
        // first draw so address sequences survive it unchanged.
        let seed = 0xbe0a_2e11u64 ^ 3u64.wrapping_mul(0xa076_1d64_78bd_642f);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), SplitMix64::new(seed ^ 1).next_u64());
    }

    #[test]
    fn report_json_shape() {
        let r = LoadReport {
            workers: 4,
            requests: 4000,
            errors: 0,
            reports: 0,
            wall_secs: 1.25,
            throughput_rps: 3200.0,
            p50_us: 80,
            p99_us: 400,
            p999_us: 900,
            min_us: 40,
            max_us: 1200,
            mean_us: 95.5,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"serve_loadgen\""));
        assert!(j.contains("\"p999\": 900"));
        assert!(j.contains("\"throughput_rps\": 3200.000"));
        assert!(r.render().contains("p99.9 900µs"));
    }

    #[test]
    fn mass_sweep_json_shape() {
        let load = LoadReport {
            workers: 2,
            requests: 200,
            errors: 0,
            reports: 0,
            wall_secs: 0.5,
            throughput_rps: 400.0,
            p50_us: 90,
            p99_us: 500,
            p999_us: 800,
            min_us: 50,
            max_us: 900,
            mean_us: 110.0,
        };
        let runs = vec![
            MassReport {
                conns: 1000,
                shards: 4,
                conns_per_shard: 250.0,
                idle_cpu_pct: Some(0.42),
                cpu_per_request_us: Some(12.5),
                load: load.clone(),
            },
            MassReport {
                conns: 10_000,
                shards: 4,
                conns_per_shard: 2500.0,
                idle_cpu_pct: None,
                cpu_per_request_us: None,
                load,
            },
        ];
        let j = mass_sweep_json(&runs);
        assert!(j.contains("\"bench\": \"serve_mass_conns\""));
        assert!(j.contains("\"conns\": 10000"));
        assert!(j.contains("\"idle_cpu_pct\": 0.420"));
        assert!(j.contains("\"idle_cpu_pct\": null"), "missing CPU clock renders as null");
        assert!(j.contains("\"conns_per_shard\": 2500.0"));
        assert!(runs[0].render().contains("1000 idle conns"));
    }

    #[test]
    fn reload_report_json_shape() {
        let r = ReloadReport {
            workers: 4,
            requests: 9000,
            errors: 0,
            wrong_answers: 0,
            reloads: 4,
            wall_secs: 0.8,
            throughput_rps: 11250.0,
            p50_us: 70,
            p99_us: 300,
            p999_us: 750,
            max_us: 2100,
            reload_max_us: 1800,
            reload_mean_us: 1200.5,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"serve_reload\""));
        assert!(j.contains("\"wrong_answers\": 0"));
        assert!(j.contains("\"p999\": 750"));
        assert!(j.contains("\"reload_us\": { \"max\": 1800, \"mean\": 1200.500 }"));
        assert!(r.render().contains("across 4 reloads"));
    }

    #[test]
    fn reload_run_rejects_empty_truth_set() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let cfg = ReloadCfg { addr_pool: vec![1], ..Default::default() };
        let out = run_reload(addr, &cfg, |_| Ok(()));
        assert!(out.unwrap_err().contains("truth set"));
    }

    #[test]
    fn mass_zero_conns_rejected() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let cfg = MassCfg { conns: 0, ..Default::default() };
        assert!(run_mass(addr, &cfg).is_err());
    }

    #[test]
    fn empty_pool_rejected() {
        let cfg = LoadCfg { addr_pool: Vec::new(), ..Default::default() };
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run(addr, &cfg).is_err());
    }
}
