//! The in-process oracle: a loaded snapshot behind longest-prefix-match
//! lookup.
//!
//! This is the server's read path, but it is also a library in its own
//! right — embed an [`Oracle`] to answer timeout queries without a socket
//! (see `examples/timeout_oracle.rs`). Lookups are lock-free reads over
//! immutable data: the per-prefix tables live in a flat arena indexed by
//! a [`beware_asdb::PrefixTrie`], so a query is one trie walk plus one
//! slice index.

use crate::proto::Status;
use beware_asdb::PrefixTrie;
use beware_dataset::snapshot::{snapshot_checksum, SnapshotError, TimeoutSnapshot};

/// Why an [`Oracle`] could not be built.
///
/// `#[non_exhaustive]`: oracle construction may grow failure modes
/// beyond snapshot validity (resource limits, say) without a breaking
/// change.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The snapshot failed canonical-form validation.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Snapshot(e) => write!(f, "invalid snapshot: {e}"),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Snapshot(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for OracleError {
    fn from(e: SnapshotError) -> Self {
        OracleError::Snapshot(e)
    }
}

/// A query answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lookup {
    /// Whether a prefix matched or the fallback answered.
    pub status: Status,
    /// Recommended timeout as `f64` bits — exactly the bits the offline
    /// `TimeoutTable` computed.
    pub timeout_bits: u64,
    /// The matched prefix (0 when the fallback answered).
    pub prefix: u32,
    /// The matched prefix length (0 when the fallback answered).
    pub prefix_len: u8,
}

impl Lookup {
    /// The recommended timeout in seconds.
    pub fn timeout_secs(&self) -> f64 {
        f64::from_bits(self.timeout_bits)
    }
}

/// Why a lookup could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// The queried address-percentile level is not in the snapshot grid.
    UnsupportedAddressPercentile(u16),
    /// The queried ping-percentile level is not in the snapshot grid.
    UnsupportedPingPercentile(u16),
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::UnsupportedAddressPercentile(t) => {
                write!(f, "address percentile {:.1}% not in snapshot", f64::from(*t) / 10.0)
            }
            LookupError::UnsupportedPingPercentile(t) => {
                write!(f, "ping percentile {:.1}% not in snapshot", f64::from(*t) / 10.0)
            }
        }
    }
}

impl std::error::Error for LookupError {}

/// An immutable, query-ready snapshot.
#[derive(Debug, Clone)]
pub struct Oracle {
    addr_levels: Vec<u16>,
    ping_levels: Vec<u16>,
    /// Fallback cells followed by each entry's cells, all row-major; the
    /// trie maps a prefix to its table's offset in this arena.
    cells: Vec<u64>,
    /// `(prefix, len)` of each entry, parallel to table order.
    prefixes: Vec<(u32, u8)>,
    trie: PrefixTrie<u32>,
    /// Identity of the snapshot this oracle was built from
    /// ([`snapshot_checksum`]) — what `SnapshotInfo` reports and what a
    /// delta reload's base check compares against.
    checksum: u64,
}

impl Oracle {
    /// Build from a validated snapshot.
    pub fn from_snapshot(snap: TimeoutSnapshot) -> Result<Oracle, OracleError> {
        snap.validate()?;
        let checksum = snapshot_checksum(&snap);
        let per_table = snap.cell_count();
        let mut cells = Vec::with_capacity(per_table * (1 + snap.entries.len()));
        cells.extend_from_slice(&snap.fallback);
        let mut trie = PrefixTrie::new();
        let mut prefixes = Vec::with_capacity(snap.entries.len());
        for (i, e) in snap.entries.iter().enumerate() {
            cells.extend_from_slice(&e.cells);
            trie.insert(e.prefix, e.len, (i + 1) as u32);
            prefixes.push((e.prefix, e.len));
        }
        Ok(Oracle {
            addr_levels: snap.address_pct_tenths,
            ping_levels: snap.ping_pct_tenths,
            cells,
            prefixes,
            trie,
            checksum,
        })
    }

    /// Number of per-prefix tables.
    pub fn entry_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Identity of the snapshot this oracle serves — the fletcher-64
    /// trailer checksum of its canonical encoding.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Reconstruct the canonical snapshot this oracle was built from.
    /// Exact inverse of [`from_snapshot`](Oracle::from_snapshot) (same
    /// bytes, same [`checksum`](Oracle::checksum)) — the base a delta
    /// reload applies against without keeping a second copy resident.
    pub fn to_snapshot(&self) -> TimeoutSnapshot {
        let per_table = self.addr_levels.len() * self.ping_levels.len();
        TimeoutSnapshot {
            address_pct_tenths: self.addr_levels.clone(),
            ping_pct_tenths: self.ping_levels.clone(),
            fallback: self.cells[..per_table].to_vec(),
            entries: self
                .prefixes
                .iter()
                .enumerate()
                .map(|(i, &(prefix, len))| beware_dataset::snapshot::SnapshotEntry {
                    prefix,
                    len,
                    cells: self.cells[(i + 1) * per_table..(i + 2) * per_table].to_vec(),
                })
                .collect(),
        }
    }

    /// The address-percentile levels served, tenths of a percent.
    pub fn addr_levels(&self) -> &[u16] {
        &self.addr_levels
    }

    /// The ping-percentile levels served, tenths of a percent.
    pub fn ping_levels(&self) -> &[u16] {
        &self.ping_levels
    }

    /// `(prefix, len)` of every entry, in snapshot (ascending) order.
    pub fn prefixes(&self) -> &[(u32, u8)] {
        &self.prefixes
    }

    /// Answer a query: longest-prefix-match `addr`, fall back to the
    /// global table, and read the cell at the requested coverage levels.
    pub fn lookup(
        &self,
        addr: u32,
        addr_pct_tenths: u16,
        ping_pct_tenths: u16,
    ) -> Result<Lookup, LookupError> {
        let ri = self
            .addr_levels
            .iter()
            .position(|&l| l == addr_pct_tenths)
            .ok_or(LookupError::UnsupportedAddressPercentile(addr_pct_tenths))?;
        let ci = self
            .ping_levels
            .iter()
            .position(|&l| l == ping_pct_tenths)
            .ok_or(LookupError::UnsupportedPingPercentile(ping_pct_tenths))?;
        let cell = ri * self.ping_levels.len() + ci;
        let (status, table, prefix, prefix_len) = match self.trie.lookup(addr) {
            Some(&idx) => {
                let (p, l) = self.prefixes[(idx - 1) as usize];
                (Status::Exact, idx as usize, p, l)
            }
            None => (Status::Fallback, 0, 0, 0),
        };
        let per_table = self.addr_levels.len() * self.ping_levels.len();
        Ok(Lookup {
            status,
            timeout_bits: self.cells[table * per_table + cell],
            prefix,
            prefix_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::snapshot::SnapshotEntry;

    fn snap() -> TimeoutSnapshot {
        TimeoutSnapshot {
            address_pct_tenths: vec![500, 950],
            ping_pct_tenths: vec![950, 990],
            // fallback cells: [f00 f01; f10 f11]
            fallback: vec![0.5f64.to_bits(), 0.9f64.to_bits(), 5.0f64.to_bits(), 60.0f64.to_bits()],
            entries: vec![
                SnapshotEntry { prefix: 0x0a000000, len: 8, cells: vec![1.0f64.to_bits(); 4] },
                SnapshotEntry {
                    prefix: 0x0a010000,
                    len: 16,
                    cells: vec![
                        2.0f64.to_bits(),
                        2.5f64.to_bits(),
                        3.0f64.to_bits(),
                        3.5f64.to_bits(),
                    ],
                },
            ],
        }
    }

    #[test]
    fn longest_prefix_then_fallback() {
        let o = Oracle::from_snapshot(snap()).unwrap();
        assert_eq!(o.entry_count(), 2);

        let fine = o.lookup(0x0a010203, 950, 990).unwrap();
        assert_eq!(fine.status, Status::Exact);
        assert_eq!((fine.prefix, fine.prefix_len), (0x0a010000, 16));
        assert_eq!(fine.timeout_secs(), 3.5);

        let coarse = o.lookup(0x0a990000, 500, 950).unwrap();
        assert_eq!((coarse.prefix, coarse.prefix_len), (0x0a000000, 8));
        assert_eq!(coarse.timeout_secs(), 1.0);

        let fb = o.lookup(0xc0000201, 950, 990).unwrap();
        assert_eq!(fb.status, Status::Fallback);
        assert_eq!((fb.prefix, fb.prefix_len), (0, 0));
        assert_eq!(fb.timeout_secs(), 60.0);
    }

    #[test]
    fn cell_indexing_is_row_major() {
        let o = Oracle::from_snapshot(snap()).unwrap();
        assert_eq!(o.lookup(0xc0000201, 500, 950).unwrap().timeout_secs(), 0.5);
        assert_eq!(o.lookup(0xc0000201, 500, 990).unwrap().timeout_secs(), 0.9);
        assert_eq!(o.lookup(0xc0000201, 950, 950).unwrap().timeout_secs(), 5.0);
    }

    #[test]
    fn unsupported_levels_rejected() {
        let o = Oracle::from_snapshot(snap()).unwrap();
        assert_eq!(o.lookup(1, 800, 950), Err(LookupError::UnsupportedAddressPercentile(800)));
        assert_eq!(o.lookup(1, 950, 10), Err(LookupError::UnsupportedPingPercentile(10)));
    }

    #[test]
    fn invalid_snapshot_rejected() {
        let mut bad = snap();
        bad.entries.swap(0, 1);
        assert_eq!(
            Oracle::from_snapshot(bad).unwrap_err(),
            OracleError::Snapshot(SnapshotError::EntriesNotAscending)
        );
    }

    #[test]
    fn to_snapshot_is_the_exact_inverse() {
        let s = snap();
        let o = Oracle::from_snapshot(s.clone()).unwrap();
        assert_eq!(o.to_snapshot(), s);
        assert_eq!(o.checksum(), snapshot_checksum(&s));
        // Rebuilding from the reconstruction preserves the identity.
        assert_eq!(Oracle::from_snapshot(o.to_snapshot()).unwrap().checksum(), o.checksum());
    }
}
