//! The oracle wire protocol: versioned, length-prefixed, checksummed
//! binary frames over TCP.
//!
//! Frame layout (lengths little-endian, checksum big-endian like every
//! Internet checksum on the wire):
//!
//! ```text
//! len u16 | body: version u8 | opcode u8 | payload … | checksum u16
//! ```
//!
//! `len` counts the body bytes (version through checksum). The checksum
//! is RFC 1071 ([`beware_wire::checksum`]) over everything before it —
//! the same fold the probers compute over every simulated ICMP packet,
//! now guarding the service's own control plane. Payloads are fixed-size
//! per opcode, so a frame decodes with no allocation beyond the body
//! buffer and a malformed length can never request more than
//! [`MAX_FRAME`] bytes.
//!
//! Percentile coverage levels travel as tenths of a percent (`950` =
//! 95.0%), matching the snapshot encoding exactly — no float equality on
//! the wire. Timeout answers travel as raw `f64` bits so the served value
//! byte-matches the offline `TimeoutTable` computation.

use beware_wire::checksum::Checksum;
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

/// Current protocol version. A server answers a mismatched version with
/// [`ErrorCode::BadVersion`] rather than dropping the connection, so old
/// clients get a diagnosable error.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on the body length of any frame.
pub const MAX_FRAME: usize = 64;

/// Where an answer's timeout came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// A prefix in the snapshot covers the address (longest match).
    Exact = 0,
    /// No covering prefix: the global fallback table answered.
    Fallback = 1,
}

/// Error codes a server can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame carried an unsupported protocol version.
    BadVersion = 1,
    /// Opcode is not a request the server understands.
    UnknownOpcode = 2,
    /// Queried percentile level is not in the snapshot's grid.
    UnsupportedPercentile = 3,
    /// Payload failed structural validation.
    Malformed = 4,
    /// A `Reload` arrived but the server has no configured reload source
    /// (`beware serve --reload-from`).
    ReloadUnavailable = 5,
    /// The reload source could not be read, decoded, or validated —
    /// the serving snapshot is unchanged.
    SnapshotRejected = 6,
    /// A delta reload's base checksum did not match the serving
    /// snapshot: the delta was computed against a different generation.
    StaleDelta = 7,
    /// A `Report` arrived but the server is not running an online policy
    /// (`beware serve --policy`): there is no estimator to feed.
    PolicyUnavailable = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadVersion),
            2 => Some(ErrorCode::UnknownOpcode),
            3 => Some(ErrorCode::UnsupportedPercentile),
            4 => Some(ErrorCode::Malformed),
            5 => Some(ErrorCode::ReloadUnavailable),
            6 => Some(ErrorCode::SnapshotRejected),
            7 => Some(ErrorCode::StaleDelta),
            8 => Some(ErrorCode::PolicyUnavailable),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadVersion => "bad protocol version",
            ErrorCode::UnknownOpcode => "unknown opcode",
            ErrorCode::UnsupportedPercentile => "unsupported percentile level",
            ErrorCode::Malformed => "malformed payload",
            ErrorCode::ReloadUnavailable => "no reload source configured",
            ErrorCode::SnapshotRejected => "reload source rejected; snapshot unchanged",
            ErrorCode::StaleDelta => "delta computed against a different snapshot generation",
            ErrorCode::PolicyUnavailable => "server is not running an online policy",
        };
        f.write_str(s)
    }
}

/// Which kind of reload source a [`Message::Reload`] asks the server to
/// apply from its configured path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadKind {
    /// The path holds a complete `BWTS` snapshot.
    Full = 0,
    /// The path holds a `BWTD` delta against the serving snapshot.
    Delta = 1,
}

/// A protocol message, request or reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// "What timeout should I use for `addr` at coverage (r%, c%)?"
    Query {
        /// Address being probed.
        addr: u32,
        /// Address-percentile coverage, tenths of a percent.
        addr_pct_tenths: u16,
        /// Ping-percentile coverage, tenths of a percent.
        ping_pct_tenths: u16,
    },
    /// Request the server's aggregate counters.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Reply to [`Message::Query`].
    Answer {
        /// Whether a prefix matched or the fallback answered.
        status: Status,
        /// Recommended timeout, as `f64` bits (seconds).
        timeout_bits: u64,
        /// The matched prefix (0 for fallback).
        prefix: u32,
        /// The matched prefix length (0 for fallback).
        prefix_len: u8,
    },
    /// Reply to [`Message::Stats`].
    StatsReply {
        /// Queries answered so far.
        queries: u64,
        /// Answers served from a matching prefix.
        hits_exact: u64,
        /// Answers served from the global fallback.
        hits_fallback: u64,
    },
    /// Reply to [`Message::Shutdown`]: the server is stopping.
    ShutdownAck,
    /// Admin: describe the serving snapshot (version, entry count,
    /// checksum). Answered with [`Message::SnapshotInfoReply`].
    SnapshotInfo,
    /// Admin: load the configured reload source (`--reload-from`) and
    /// atomically swap the serving snapshot. Answered with
    /// [`Message::SnapshotInfoReply`] describing the post-reload state,
    /// or an [`Message::Error`] (`ReloadUnavailable`, `SnapshotRejected`,
    /// `StaleDelta`) with the serving snapshot unchanged.
    Reload {
        /// Whether the source is a full snapshot or a delta.
        kind: ReloadKind,
    },
    /// Reply to [`Message::SnapshotInfo`] and [`Message::Reload`].
    SnapshotInfoReply {
        /// Snapshot version (epoch): 1 at startup, +1 per reload.
        version: u64,
        /// Per-prefix entry count of the serving snapshot.
        entries: u32,
        /// Identity of the serving snapshot — the fletcher-64 trailer
        /// checksum of its canonical encoding.
        checksum: u64,
    },
    /// A measured RTT for `addr`, feeding the server's online policy
    /// (`beware serve --policy`). Answered with [`Message::ReportAck`],
    /// or [`ErrorCode::PolicyUnavailable`] when the server is snapshot-
    /// only.
    Report {
        /// Address the RTT was measured against.
        addr: u32,
        /// Round-trip time in microseconds.
        rtt_us: u32,
    },
    /// Reply to [`Message::Report`].
    ReportAck {
        /// RTT reports absorbed so far (across all connections).
        reports: u64,
    },
    /// Error reply.
    Error {
        /// What went wrong.
        code: ErrorCode,
    },
}

const OP_QUERY: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_SHUTDOWN: u8 = 0x03;
const OP_SNAPSHOT_INFO: u8 = 0x04;
const OP_RELOAD: u8 = 0x05;
const OP_REPORT: u8 = 0x06;
const OP_ANSWER: u8 = 0x81;
const OP_STATS_REPLY: u8 = 0x82;
const OP_SHUTDOWN_ACK: u8 = 0x83;
const OP_SNAPSHOT_INFO_REPLY: u8 = 0x84;
const OP_REPORT_ACK: u8 = 0x86;
const OP_ERROR: u8 = 0x7f;

/// Errors arising while decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying I/O failure (including EOF mid-frame).
    Io(io::Error),
    /// Structural problem: bad length, unknown opcode, wrong payload size.
    Corrupt(&'static str),
    /// Checksum mismatch.
    Checksum {
        /// Checksum carried by the frame.
        stored: u16,
        /// Checksum recomputed over the received bytes.
        computed: u16,
    },
    /// Frame declared a protocol version this build does not speak.
    Version(u8),
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            ProtoError::Checksum { stored, computed } => {
                write!(f, "frame checksum mismatch: stored {stored:#06x}, computed {computed:#06x}")
            }
            ProtoError::Version(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Encode a message into a complete frame (length prefix included).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut body = Vec::with_capacity(MAX_FRAME);
    body.put_u8(PROTO_VERSION);
    match *msg {
        Message::Query { addr, addr_pct_tenths, ping_pct_tenths } => {
            body.put_u8(OP_QUERY);
            body.put_u32_le(addr);
            body.put_u16_le(addr_pct_tenths);
            body.put_u16_le(ping_pct_tenths);
        }
        Message::Stats => body.put_u8(OP_STATS),
        Message::Shutdown => body.put_u8(OP_SHUTDOWN),
        Message::Answer { status, timeout_bits, prefix, prefix_len } => {
            body.put_u8(OP_ANSWER);
            body.put_u8(status as u8);
            body.put_u64_le(timeout_bits);
            body.put_u32_le(prefix);
            body.put_u8(prefix_len);
        }
        Message::StatsReply { queries, hits_exact, hits_fallback } => {
            body.put_u8(OP_STATS_REPLY);
            body.put_u64_le(queries);
            body.put_u64_le(hits_exact);
            body.put_u64_le(hits_fallback);
        }
        Message::ShutdownAck => body.put_u8(OP_SHUTDOWN_ACK),
        Message::SnapshotInfo => body.put_u8(OP_SNAPSHOT_INFO),
        Message::Reload { kind } => {
            body.put_u8(OP_RELOAD);
            body.put_u8(kind as u8);
        }
        Message::SnapshotInfoReply { version, entries, checksum } => {
            body.put_u8(OP_SNAPSHOT_INFO_REPLY);
            body.put_u64_le(version);
            body.put_u32_le(entries);
            body.put_u64_le(checksum);
        }
        Message::Report { addr, rtt_us } => {
            body.put_u8(OP_REPORT);
            body.put_u32_le(addr);
            body.put_u32_le(rtt_us);
        }
        Message::ReportAck { reports } => {
            body.put_u8(OP_REPORT_ACK);
            body.put_u64_le(reports);
        }
        Message::Error { code } => {
            body.put_u8(OP_ERROR);
            body.put_u8(code as u8);
        }
    }
    let mut ck = Checksum::new();
    ck.add_bytes(&body);
    let ck = ck.finish();
    // Every current payload is far below MAX_FRAME by construction, but a
    // future opcode with a bigger payload would silently truncate the u16
    // length prefix (and desynchronize every decoder downstream) — fail
    // loudly at the encode site instead.
    assert!(
        body.len() + 2 <= MAX_FRAME,
        "encoded body ({} bytes + 2 checksum) exceeds MAX_FRAME ({MAX_FRAME})",
        body.len()
    );
    let mut frame = Vec::with_capacity(body.len() + 4);
    frame.put_u16_le((body.len() + 2) as u16);
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&ck.to_be_bytes());
    frame
}

/// Decode a frame body (everything after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<Message, ProtoError> {
    if body.len() < 4 {
        return Err(ProtoError::Corrupt("frame shorter than minimum"));
    }
    let (msg, trailer) = body.split_at(body.len() - 2);
    let stored = u16::from_be_bytes([trailer[0], trailer[1]]);
    let mut ck = Checksum::new();
    ck.add_bytes(msg);
    let computed = ck.finish();
    if stored != computed {
        return Err(ProtoError::Checksum { stored, computed });
    }
    let mut b = msg;
    let version = b.get_u8();
    if version != PROTO_VERSION {
        return Err(ProtoError::Version(version));
    }
    let opcode = b.get_u8();
    let need = |n: usize| -> Result<(), ProtoError> {
        if b.len() == n {
            Ok(())
        } else {
            Err(ProtoError::Corrupt("payload length does not match opcode"))
        }
    };
    match opcode {
        OP_QUERY => {
            need(8)?;
            Ok(Message::Query {
                addr: b.get_u32_le(),
                addr_pct_tenths: b.get_u16_le(),
                ping_pct_tenths: b.get_u16_le(),
            })
        }
        OP_STATS => {
            need(0)?;
            Ok(Message::Stats)
        }
        OP_SHUTDOWN => {
            need(0)?;
            Ok(Message::Shutdown)
        }
        OP_ANSWER => {
            need(14)?;
            let status = match b.get_u8() {
                0 => Status::Exact,
                1 => Status::Fallback,
                _ => return Err(ProtoError::Corrupt("unknown answer status")),
            };
            Ok(Message::Answer {
                status,
                timeout_bits: b.get_u64_le(),
                prefix: b.get_u32_le(),
                prefix_len: b.get_u8(),
            })
        }
        OP_STATS_REPLY => {
            need(24)?;
            Ok(Message::StatsReply {
                queries: b.get_u64_le(),
                hits_exact: b.get_u64_le(),
                hits_fallback: b.get_u64_le(),
            })
        }
        OP_SHUTDOWN_ACK => {
            need(0)?;
            Ok(Message::ShutdownAck)
        }
        OP_SNAPSHOT_INFO => {
            need(0)?;
            Ok(Message::SnapshotInfo)
        }
        OP_RELOAD => {
            need(1)?;
            let kind = match b.get_u8() {
                0 => ReloadKind::Full,
                1 => ReloadKind::Delta,
                _ => return Err(ProtoError::Corrupt("unknown reload kind")),
            };
            Ok(Message::Reload { kind })
        }
        OP_SNAPSHOT_INFO_REPLY => {
            need(20)?;
            Ok(Message::SnapshotInfoReply {
                version: b.get_u64_le(),
                entries: b.get_u32_le(),
                checksum: b.get_u64_le(),
            })
        }
        OP_REPORT => {
            need(8)?;
            Ok(Message::Report { addr: b.get_u32_le(), rtt_us: b.get_u32_le() })
        }
        OP_REPORT_ACK => {
            need(8)?;
            Ok(Message::ReportAck { reports: b.get_u64_le() })
        }
        OP_ERROR => {
            need(1)?;
            let code =
                ErrorCode::from_u8(b.get_u8()).ok_or(ProtoError::Corrupt("unknown error code"))?;
            Ok(Message::Error { code })
        }
        _ => Err(ProtoError::Corrupt("unknown opcode")),
    }
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&encode(msg))
}

/// Read one frame from a (blocking) stream.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Message, ProtoError> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let len = u16::from_le_bytes(len) as usize;
    if !(4..=MAX_FRAME).contains(&len) {
        return Err(ProtoError::Corrupt("frame length out of range"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&body)
}

/// Split complete frames out of an accumulation buffer (the server's
/// nonblocking read path). Returns the decoded message and how many bytes
/// it consumed, `Ok(None)` when the buffer holds only a partial frame.
pub fn try_decode(buf: &[u8]) -> Result<Option<(Message, usize)>, ProtoError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    if !(4..=MAX_FRAME).contains(&len) {
        return Err(ProtoError::Corrupt("frame length out of range"));
    }
    if buf.len() < 2 + len {
        return Ok(None);
    }
    decode_body(&buf[2..2 + len]).map(|m| Some((m, 2 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Query { addr: 0x0a010203, addr_pct_tenths: 950, ping_pct_tenths: 980 },
            Message::Stats,
            Message::Shutdown,
            Message::Answer {
                status: Status::Exact,
                timeout_bits: 3.25f64.to_bits(),
                prefix: 0x0a010200,
                prefix_len: 24,
            },
            Message::Answer {
                status: Status::Fallback,
                timeout_bits: 60.0f64.to_bits(),
                prefix: 0,
                prefix_len: 0,
            },
            Message::StatsReply { queries: 10, hits_exact: 7, hits_fallback: 3 },
            Message::ShutdownAck,
            Message::SnapshotInfo,
            Message::Reload { kind: ReloadKind::Full },
            Message::Reload { kind: ReloadKind::Delta },
            Message::SnapshotInfoReply {
                version: 3,
                entries: 1771,
                checksum: 0xdead_beef_0bada110,
            },
            Message::Report { addr: 0x0a010203, rtt_us: 137_421 },
            Message::ReportAck { reports: 98_765 },
            Message::Error { code: ErrorCode::UnsupportedPercentile },
            Message::Error { code: ErrorCode::ReloadUnavailable },
            Message::Error { code: ErrorCode::SnapshotRejected },
            Message::Error { code: ErrorCode::StaleDelta },
            Message::Error { code: ErrorCode::PolicyUnavailable },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let frame = encode(&msg);
            assert!(frame.len() <= MAX_FRAME + 2, "{msg:?}");
            let back = read_frame(&mut &frame[..]).unwrap();
            assert_eq!(back, msg);
            let (incr, used) = try_decode(&frame).unwrap().unwrap();
            assert_eq!(incr, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn length_prefix_matches_body_and_respects_max_frame() {
        for msg in all_messages() {
            let frame = encode(&msg);
            let declared = u16::from_le_bytes([frame[0], frame[1]]) as usize;
            assert_eq!(declared, frame.len() - 2, "{msg:?}");
            assert!(declared <= MAX_FRAME, "{msg:?} declares {declared} > MAX_FRAME");
            assert!(declared >= 4, "{msg:?} declares an impossible body");
        }
    }

    #[test]
    fn fragmented_decode_equals_whole_decode() {
        // Split every frame at every boundary, and also feed it byte at a
        // time: an accumulation buffer must decode the same message no
        // matter how the bytes were fragmented.
        for msg in all_messages() {
            let frame = encode(&msg);
            for cut in 0..=frame.len() {
                let mut buf = Vec::new();
                buf.extend_from_slice(&frame[..cut]);
                let early = try_decode(&buf).unwrap();
                if cut < frame.len() {
                    assert!(early.is_none(), "{msg:?} decoded from {cut} bytes");
                }
                buf.extend_from_slice(&frame[cut..]);
                let (got, used) = try_decode(&buf).unwrap().unwrap();
                assert_eq!(got, msg, "split at {cut}");
                assert_eq!(used, frame.len());
            }
            let mut buf = Vec::new();
            let mut decoded = None;
            for (i, &b) in frame.iter().enumerate() {
                buf.push(b);
                match try_decode(&buf).unwrap() {
                    Some((m, used)) => {
                        assert_eq!(i, frame.len() - 1, "decoded before the last byte");
                        assert_eq!(used, frame.len());
                        decoded = Some(m);
                    }
                    None => assert!(i < frame.len() - 1),
                }
            }
            assert_eq!(decoded, Some(msg));
        }
    }

    #[test]
    fn partial_frames_wait_for_more() {
        let frame = encode(&Message::Stats);
        for cut in 0..frame.len() {
            assert!(try_decode(&frame[..cut]).unwrap().is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_frames_decode_one_at_a_time() {
        let mut buf = encode(&Message::Stats);
        buf.extend(encode(&Message::Shutdown));
        let (m1, used) = try_decode(&buf).unwrap().unwrap();
        assert_eq!(m1, Message::Stats);
        let (m2, used2) = try_decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(m2, Message::Shutdown);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn corruption_caught_by_checksum() {
        for msg in all_messages() {
            let clean = encode(&msg);
            // Flip each body byte in turn: every flip must surface as an
            // error, never as a silently different message.
            for i in 2..clean.len() {
                let mut bad = clean.clone();
                bad[i] ^= 0x10;
                match read_frame(&mut &bad[..]) {
                    Ok(got) => assert_eq!(got, msg, "flip at {i} silently accepted"),
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn version_mismatch_reported() {
        let mut frame = encode(&Message::Stats);
        frame[2] = 9; // version byte
                      // Checksum now fails first unless recomputed; patch it.
        let body_len = frame.len() - 2;
        let mut ck = Checksum::new();
        ck.add_bytes(&frame[2..body_len]);
        let ck = ck.finish().to_be_bytes();
        frame[body_len] = ck[0];
        frame[body_len + 1] = ck[1];
        assert!(matches!(read_frame(&mut &frame[..]), Err(ProtoError::Version(9))));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let frame = [0xffu8, 0xff, 0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(ProtoError::Corrupt("frame length out of range"))
        ));
        assert!(try_decode(&frame).is_err());
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let frame = encode(&Message::Stats);
        assert!(matches!(read_frame(&mut &frame[..frame.len() - 1]), Err(ProtoError::Io(_))));
    }
}
