//! The oracle daemon: a sharded, thread-per-core TCP server.
//!
//! One acceptor thread distributes connections round-robin to `shards`
//! worker threads. Each shard owns its connections outright — a small
//! nonblocking read loop with per-connection reassembly buffers, a
//! per-shard answer cache, and a per-shard [`Registry`] — so the hot path
//! takes no locks and shares no mutable state beyond three global stats
//! counters. Shard registries are merged **in fixed shard order** when
//! the server stops, so the deterministic metric families are
//! byte-identical no matter how connections were scheduled (the
//! scheduling-dependent counters — cache hits, idle closures, per-shard
//! assignment — live under the `sched/` family, which the JSON export
//! excludes; see DESIGN.md §8).
//!
//! The paper's own advice is applied to the server itself: connections
//! are *listened to* with a bound. A connection idle past the configured
//! timeout is closed rather than waited on forever — bounded listen, not
//! infinite patience.

use crate::oracle::{LookupError, Oracle};
use crate::proto::{self, ErrorCode, Message, ProtoError, Status};
use beware_telemetry::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Worker shards (≥ 1). Each shard is one thread owning a disjoint
    /// set of connections.
    pub shards: usize,
    /// Per-connection idle bound: a connection that stays silent this
    /// long is closed.
    pub idle_timeout: Duration,
    /// Whether telemetry is recorded.
    pub metrics: bool,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            idle_timeout: Duration::from_secs(60),
            metrics: true,
        }
    }
}

/// Aggregate counters served by the `Stats` request. Shared across
/// shards; relaxed ordering is fine for monotone counters.
#[derive(Debug, Default)]
struct GlobalStats {
    queries: AtomicU64,
    hits_exact: AtomicU64,
    hits_fallback: AtomicU64,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] leaves the threads running detached until a
/// `Shutdown` frame arrives.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Registry>>,
    shards: Vec<JoinHandle<Registry>>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown from in-process (equivalent to a `Shutdown`
    /// frame).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to stop (via [`shutdown`](Self::shutdown) or a
    /// `Shutdown` frame) and return the merged telemetry: acceptor first,
    /// then every shard in index order — the fixed merge order the
    /// determinism contract requires.
    pub fn join(mut self) -> Registry {
        let mut merged = self
            .acceptor
            .take()
            .expect("join called once")
            .join()
            .expect("acceptor thread panicked");
        for shard in self.shards.drain(..) {
            merged.merge(&shard.join().expect("shard thread panicked"));
        }
        merged
    }
}

/// Bind and start serving `oracle` on `bind` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port).
pub fn start(oracle: Arc<Oracle>, bind: impl ToSocketAddrs, cfg: ServerCfg) -> io::Result<ServerHandle> {
    let shards = cfg.shards.max(1);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(GlobalStats::default());

    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(shards);
    let mut shard_handles = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        senders.push(tx);
        let oracle = Arc::clone(&oracle);
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let cfg = cfg.clone();
        shard_handles.push(std::thread::spawn(move || shard_loop(rx, oracle, stop, stats, &cfg)));
    }

    let stop_a = Arc::clone(&stop);
    let metrics = cfg.metrics;
    let acceptor = std::thread::spawn(move || {
        let mut reg = if metrics { Registry::new() } else { Registry::disabled() };
        let mut next = 0usize;
        loop {
            if stop_a.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    reg.scope("serve").incr("connections");
                    // A dead shard (panicked) drops its receiver; fall
                    // through to the next one rather than losing the
                    // connection.
                    let mut conn = Some(stream);
                    for i in 0..senders.len() {
                        let tx = &senders[(next + i) % senders.len()];
                        match tx.send(conn.take().expect("connection unrouted")) {
                            Ok(()) => break,
                            Err(std::sync::mpsc::SendError(c)) => conn = Some(c),
                        }
                    }
                    next = next.wrapping_add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    reg.scope("serve").incr("accept_errors");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        reg
    });

    Ok(ServerHandle { addr, stop, acceptor: Some(acceptor), shards: shard_handles })
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    /// Reassembly buffer for partially received frames.
    buf: Vec<u8>,
    last_active: Instant,
    open: bool,
}

/// Per-shard answer cache cap; the cache is cleared wholesale when full
/// (queries repeat heavily under load, so wholesale eviction is rare and
/// keeps the structure trivial).
const CACHE_CAP: usize = 8192;

fn shard_loop(
    rx: Receiver<TcpStream>,
    oracle: Arc<Oracle>,
    stop: Arc<AtomicBool>,
    stats: Arc<GlobalStats>,
    cfg: &ServerCfg,
) -> Registry {
    let mut reg = if cfg.metrics { Registry::new() } else { Registry::disabled() };
    let mut conns: Vec<Conn> = Vec::new();
    let mut cache: HashMap<(u32, u16, u16), Message> = HashMap::new();
    let mut scratch = [0u8; 4096];

    loop {
        // Adopt newly assigned connections.
        while let Ok(stream) = rx.try_recv() {
            reg.scope("sched").scope("serve").incr("connections_assigned");
            conns.push(Conn { stream, buf: Vec::new(), last_active: Instant::now(), open: true });
        }

        if stop.load(Ordering::SeqCst) {
            break;
        }

        let mut progress = false;
        for conn in &mut conns {
            progress |= service_conn(conn, &oracle, &stop, &stats, &mut cache, &mut reg, &mut scratch);
            if conn.open && conn.last_active.elapsed() > cfg.idle_timeout {
                // Dog food: bounded listen. Stop waiting on a silent peer.
                reg.scope("sched").scope("serve").incr("idle_closed");
                conn.open = false;
            }
        }
        conns.retain(|c| c.open);

        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    reg
}

/// Pump one connection: read whatever is available, answer every complete
/// frame. Returns true when any byte moved.
fn service_conn(
    conn: &mut Conn,
    oracle: &Oracle,
    stop: &AtomicBool,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    reg: &mut Registry,
    scratch: &mut [u8],
) -> bool {
    let mut progress = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.open = false;
                break;
            }
            Ok(n) => {
                reg.scope("serve").add("bytes_in", n as u64);
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.last_active = Instant::now();
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.open = false;
                break;
            }
        }
    }

    let mut consumed = 0usize;
    while conn.open {
        match proto::try_decode(&conn.buf[consumed..]) {
            Ok(Some((msg, used))) => {
                consumed += used;
                let t0 = Instant::now();
                let (reply, close) = handle_request(&msg, oracle, stop, stats, cache, reg);
                let frame = proto::encode(&reply);
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                if write_all_nb(&mut conn.stream, &frame).is_err() {
                    conn.open = false;
                }
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                reg.scope("walltime").scope("serve").observe("request_ns", ns);
                if close {
                    conn.open = false;
                }
                progress = true;
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is lost: report once and drop the connection.
                reg.scope("serve").incr("proto_errors");
                let code = match e {
                    ProtoError::Version(_) => ErrorCode::BadVersion,
                    _ => ErrorCode::Malformed,
                };
                let frame = proto::encode(&Message::Error { code });
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                let _ = write_all_nb(&mut conn.stream, &frame);
                conn.open = false;
                progress = true;
            }
        }
    }
    conn.buf.drain(..consumed);
    progress
}

/// Dispatch one decoded request. Returns the reply and whether the
/// connection should close afterwards.
fn handle_request(
    msg: &Message,
    oracle: &Oracle,
    stop: &AtomicBool,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    reg: &mut Registry,
) -> (Message, bool) {
    let mut serve = reg.scope("serve");
    serve.incr("requests");
    match *msg {
        Message::Query { addr, addr_pct_tenths, ping_pct_tenths } => {
            serve.incr("queries");
            stats.queries.fetch_add(1, Ordering::Relaxed);
            let key = (addr, addr_pct_tenths, ping_pct_tenths);
            if let Some(&cached) = cache.get(&key) {
                reg.scope("sched").scope("serve").incr("cache_hits");
                // Deterministic per-request counters must not depend on
                // whether this shard's cache happened to hold the reply.
                match cached {
                    Message::Answer { status, .. } => bump_hit(stats, reg, status),
                    Message::Error { .. } => {
                        reg.scope("serve").incr("errors_unsupported_pct");
                    }
                    _ => {}
                }
                return (cached, false);
            }
            reg.scope("sched").scope("serve").incr("cache_misses");
            let reply = match oracle.lookup(addr, addr_pct_tenths, ping_pct_tenths) {
                Ok(ans) => {
                    bump_hit(stats, reg, ans.status);
                    Message::Answer {
                        status: ans.status,
                        timeout_bits: ans.timeout_bits,
                        prefix: ans.prefix,
                        prefix_len: ans.prefix_len,
                    }
                }
                Err(LookupError::UnsupportedAddressPercentile(_))
                | Err(LookupError::UnsupportedPingPercentile(_)) => {
                    reg.scope("serve").incr("errors_unsupported_pct");
                    Message::Error { code: ErrorCode::UnsupportedPercentile }
                }
            };
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, reply);
            (reply, false)
        }
        Message::Stats => {
            serve.incr("stats_requests");
            (
                Message::StatsReply {
                    queries: stats.queries.load(Ordering::Relaxed),
                    hits_exact: stats.hits_exact.load(Ordering::Relaxed),
                    hits_fallback: stats.hits_fallback.load(Ordering::Relaxed),
                },
                false,
            )
        }
        Message::Shutdown => {
            serve.incr("shutdown_requests");
            stop.store(true, Ordering::SeqCst);
            (Message::ShutdownAck, true)
        }
        // A reply opcode arriving as a request is a confused client.
        _ => {
            serve.incr("errors_bad_request");
            (Message::Error { code: ErrorCode::UnknownOpcode }, false)
        }
    }
}

fn bump_hit(stats: &GlobalStats, reg: &mut Registry, status: Status) {
    match status {
        Status::Exact => {
            stats.hits_exact.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_exact");
        }
        Status::Fallback => {
            stats.hits_fallback.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_fallback");
        }
    }
}

/// `write_all` over a nonblocking socket: replies are tiny (≤ 66 bytes),
/// so `WouldBlock` only happens when the peer's receive window is
/// genuinely full — back off briefly and retry.
fn write_all_nb(stream: &mut TcpStream, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
