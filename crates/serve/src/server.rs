//! The oracle daemon: a sharded, thread-per-core, readiness-driven TCP
//! server.
//!
//! One acceptor thread distributes connections round-robin to `shards`
//! worker threads. Each shard owns its connections outright — a
//! [`Reactor`] (epoll on Linux, clock-paced polling under a virtual
//! clock), per-connection reassembly buffers, a per-shard answer cache,
//! and a per-shard [`Registry`] — so the hot path takes no locks and
//! shares no mutable state beyond three global stats counters. Shard
//! registries are merged **in fixed shard order** when the server stops,
//! so the deterministic metric families are byte-identical no matter how
//! connections were scheduled (the scheduling-dependent counters —
//! cache hits, idle closures, wakeup counts, per-shard assignment —
//! live under the `sched/` family, which the JSON export excludes; see
//! DESIGN.md §8).
//!
//! The protocol state machine itself lives in [`crate::engine`], behind
//! the [`Transport`](crate::engine::Transport) seam: this module is only
//! the *socket* incarnation — listener, acceptor, reactor registration,
//! interest flips, the idle wheel. `beware simserve` runs the same
//! [`Engine`] over in-memory channels inside netsim.
//!
//! **Nobody spins.** A shard blocks in [`Reactor::wait`] with a timeout
//! derived from its [`DeadlineWheel`] next deadline (idle eviction, the
//! shutdown drain bound), so an idle connection costs ~zero CPU: the
//! shard wakes on I/O readiness, on an eventfd ring from the acceptor
//! (new connection) or a [`StopSignal`] (shutdown), or when a deadline
//! it owns comes due — never on a fixed nap (DESIGN.md §11). Interest
//! flips between readable and writable as a connection's output queue
//! fills and drains.
//!
//! No peer can make a shard wait (DESIGN.md §9). Replies go through a
//! **bounded per-connection output queue** drained on writability with
//! nonblocking writes: a peer that stops reading costs its shard
//! nothing, and is closed outright once [`ServerCfg::out_queue_cap`]
//! reply bytes pile up. Reads are budgeted per readiness event so one
//! firehose connection cannot starve its shard siblings — the
//! level-triggered reactor simply re-reports the leftover — and a
//! connection idle past the configured timeout is closed rather than
//! waited on forever: bounded listen, not infinite patience, applied to
//! ourselves. Faults handled on the way (write backpressure, queue
//! overflows) are counted under the nondeterministic `faults/` family.

use crate::engine::{Conn, Engine, EngineCore, OUT_QUEUE_CAP};
use crate::proto;
use crate::swap::OracleHandle;
use beware_policy::PolicyKind;
use beware_runtime::clock::{SharedClock, WallClock};
pub use beware_runtime::reactor::ReactorKind;
use beware_runtime::reactor::{
    make_reactor, round_wait_up_to_ms, Event, Interest, Reactor, StopSignal, Waker,
};
use beware_runtime::wheel::DeadlineWheel;
use beware_telemetry::Registry;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
///
/// `#[non_exhaustive]`: construct one with [`ServerCfg::builder`] (or
/// take [`ServerCfg::default`] as-is). The fields stay `pub` for
/// reading, but a new knob is no longer a breaking change for every
/// downstream struct literal, and [`ServerCfgBuilder::build`] gets to
/// validate combinations up front.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Worker shards (≥ 1). Each shard is one thread owning a disjoint
    /// set of connections.
    pub shards: usize,
    /// Per-connection idle bound: a connection that stays silent this
    /// long is closed.
    pub idle_timeout: Duration,
    /// After shutdown is requested, shards keep draining queued replies
    /// (most importantly the `ShutdownAck`) for at most this long.
    pub drain_timeout: Duration,
    /// Upper bound on one connection's queued-but-unsent reply bytes;
    /// past it the connection is closed.
    pub out_queue_cap: usize,
    /// Whether telemetry is recorded.
    pub metrics: bool,
    /// Time source for every deadline and stamp in the server. Wall
    /// time by default; a [`VirtualClock`](beware_runtime::VirtualClock)
    /// handle makes hour-scale idle timeouts testable in milliseconds.
    pub clock: SharedClock,
    /// Readiness source for every shard and the acceptor.
    /// [`ReactorKind::Auto`] (the default) picks epoll for wall clocks
    /// and the clock-paced polling fallback for virtual ones — epoll
    /// would park the OS thread on a timeline that never moves on its
    /// own.
    pub reactor: ReactorKind,
    /// Snapshot source for hot reloads: the file `Reload` admin frames
    /// (and the poller, if enabled) load from — a full `.bwts` snapshot
    /// or a `.bwtd` delta. `None` disables the reload plane; `Reload`
    /// then answers `ErrorCode::ReloadUnavailable`.
    pub reload_from: Option<PathBuf>,
    /// When set, shard 0 re-reads [`reload_from`](Self::reload_from) on
    /// this period through its deadline wheel — no extra thread, no
    /// fixed nap — and swaps the oracle whenever the file's content no
    /// longer matches the snapshot being served.
    pub reload_poll: Option<Duration>,
    /// When set, the server answers queries from an **online estimator**
    /// of this kind instead of the static snapshot: clients feed it
    /// measured RTTs via `Report` frames, and the per-prefix state is
    /// periodically frozen into a `PolicyTable` published through the
    /// same epoch-swap mechanism hot reloads use. `None` (the default)
    /// serves the snapshot; `Report` then answers
    /// `ErrorCode::PolicyUnavailable`.
    pub policy: Option<PolicyKind>,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_millis(500),
            out_queue_cap: OUT_QUEUE_CAP,
            metrics: true,
            clock: WallClock::shared(),
            reactor: ReactorKind::Auto,
            reload_from: None,
            reload_poll: None,
            policy: None,
        }
    }
}

impl ServerCfg {
    /// Start from the defaults and adjust:
    /// `ServerCfg::builder().shards(2).build()?`.
    pub fn builder() -> ServerCfgBuilder {
        ServerCfgBuilder { cfg: ServerCfg::default() }
    }
}

/// Builder for [`ServerCfg`] — the way to spell a non-default
/// configuration now that the struct is `#[non_exhaustive]`.
/// [`build`](Self::build) validates the combination so a zero shard
/// count or an output queue that cannot hold one reply frame fails at
/// configuration time instead of surfacing as a hung server.
#[derive(Debug, Clone)]
pub struct ServerCfgBuilder {
    cfg: ServerCfg,
}

impl Default for ServerCfgBuilder {
    fn default() -> Self {
        ServerCfg::builder()
    }
}

impl ServerCfgBuilder {
    /// Worker shard count. See [`ServerCfg::shards`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// See [`ServerCfg::idle_timeout`].
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.cfg.idle_timeout = d;
        self
    }

    /// See [`ServerCfg::drain_timeout`].
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.cfg.drain_timeout = d;
        self
    }

    /// See [`ServerCfg::out_queue_cap`].
    pub fn out_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.out_queue_cap = cap;
        self
    }

    /// See [`ServerCfg::metrics`].
    pub fn metrics(mut self, on: bool) -> Self {
        self.cfg.metrics = on;
        self
    }

    /// See [`ServerCfg::clock`].
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.cfg.clock = clock;
        self
    }

    /// See [`ServerCfg::reactor`].
    pub fn reactor(mut self, kind: ReactorKind) -> Self {
        self.cfg.reactor = kind;
        self
    }

    /// See [`ServerCfg::reload_from`].
    pub fn reload_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.reload_from = Some(path.into());
        self
    }

    /// See [`ServerCfg::reload_poll`]. Requires a reload source.
    pub fn reload_poll(mut self, period: Duration) -> Self {
        self.cfg.reload_poll = Some(period);
        self
    }

    /// See [`ServerCfg::policy`]. [`PolicyKind::Oracle`] means "serve the
    /// snapshot" and is the same as not setting a policy at all.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.cfg.policy = match kind {
            PolicyKind::Oracle => None,
            online => Some(online),
        };
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServerCfg, ConfigError> {
        let cfg = self.cfg;
        if cfg.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if cfg.idle_timeout.is_zero() {
            return Err(ConfigError::ZeroIdleTimeout);
        }
        let min = proto::MAX_FRAME + 2;
        if cfg.out_queue_cap < min {
            return Err(ConfigError::QueueCapTooSmall { min, got: cfg.out_queue_cap });
        }
        match cfg.reload_poll {
            Some(_) if cfg.reload_from.is_none() => return Err(ConfigError::PollWithoutSource),
            Some(p) if p.is_zero() => return Err(ConfigError::ZeroReloadPoll),
            _ => {}
        }
        Ok(cfg)
    }
}

/// Why [`ServerCfgBuilder::build`] refused a configuration.
///
/// `#[non_exhaustive]`: validation grows with the config surface.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `shards == 0`: the server would accept and never answer.
    ZeroShards,
    /// A zero idle timeout would evict every connection on its first
    /// wheel tick.
    ZeroIdleTimeout,
    /// The output queue cannot hold even one maximum-size reply frame,
    /// so every connection would be closed on its first answer.
    QueueCapTooSmall {
        /// Smallest workable cap (one encoded max-size frame).
        min: usize,
        /// The cap that was requested.
        got: usize,
    },
    /// `reload_poll` was set without `reload_from`: nothing to poll.
    PollWithoutSource,
    /// A zero poll period would busy-loop shard 0.
    ZeroReloadPoll,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::ZeroIdleTimeout => write!(f, "idle timeout must be nonzero"),
            ConfigError::QueueCapTooSmall { min, got } => {
                write!(f, "output queue cap {got} cannot hold one reply frame (min {min})")
            }
            ConfigError::PollWithoutSource => {
                write!(f, "reload poll requires a reload source (reload_from)")
            }
            ConfigError::ZeroReloadPoll => write!(f, "reload poll period must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] leaves the threads running detached until a
/// `Shutdown` frame arrives.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<StopSignal>,
    oracle: OracleHandle,
    acceptor: Option<JoinHandle<Registry>>,
    shards: Vec<JoinHandle<Registry>>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The swappable oracle slot this server answers from. Publishing
    /// through it is an in-process hot reload — every shard picks up
    /// the new snapshot on its next request, mid-connection, with no
    /// listener downtime.
    pub fn oracle(&self) -> &OracleHandle {
        &self.oracle
    }

    /// Request shutdown from in-process (equivalent to a `Shutdown`
    /// frame): raises the stop flag and rings every shard's and the
    /// acceptor's wakeup doorbell, so threads blocked in
    /// [`Reactor::wait`] notice immediately.
    pub fn shutdown(&self) {
        self.stop.request_stop();
    }

    /// Wait for the server to stop (via [`shutdown`](Self::shutdown) or a
    /// `Shutdown` frame) and return the merged telemetry: acceptor first,
    /// then every shard in index order — the fixed merge order the
    /// determinism contract requires.
    pub fn join(mut self) -> Registry {
        let mut merged = self
            .acceptor
            .take()
            .expect("join called once")
            .join()
            .expect("acceptor thread panicked");
        for shard in self.shards.drain(..) {
            merged.merge(&shard.join().expect("shard thread panicked"));
        }
        merged
    }
}

/// Token every reactor reserves for its wakeup doorbell; connection
/// tokens count up from zero and can never collide with it.
const WAKER_TOKEN: u64 = u64::MAX;
/// The acceptor's token for the listening socket.
const LISTENER_TOKEN: u64 = 0;

/// Bind and start serving `oracle` on `bind` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port).
///
/// `oracle` is anything convertible into an [`OracleHandle`]: a bare
/// [`Oracle`](crate::oracle::Oracle) or `Arc<Oracle>` wraps into a fresh
/// slot at version 1; passing an existing handle shares the slot, so the
/// caller can publish hot reloads from outside the server.
pub fn start(
    oracle: impl Into<OracleHandle>,
    bind: impl ToSocketAddrs,
    cfg: ServerCfg,
) -> io::Result<ServerHandle> {
    let shards = cfg.shards.max(1);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(StopSignal::new());
    let core =
        Arc::new(EngineCore::new(oracle, Arc::clone(&stop), cfg.policy, cfg.reload_from.clone()));
    let handle = core.oracle().clone();

    // Reactors and doorbells are created here, not in the threads, so a
    // resource failure (fd limit, unsupported platform) surfaces as an
    // `Err` from `start` instead of a dead shard.
    let mut senders: Vec<(Sender<TcpStream>, Arc<Waker>)> = Vec::with_capacity(shards);
    let mut shard_handles = Vec::with_capacity(shards);
    for shard_index in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        let waker = Arc::new(Waker::new()?);
        let mut reactor = make_reactor(cfg.reactor, &cfg.clock)?;
        reactor.add_waker(Arc::clone(&waker), WAKER_TOKEN)?;
        stop.subscribe(Arc::clone(&waker));
        senders.push((tx, waker));
        let engine = core.engine(Arc::clone(&cfg.clock), cfg.out_queue_cap);
        // One reload poller per server, riding shard 0's wheel; every
        // shard can still execute an admin `Reload`.
        let schedule_poll =
            shard_index == 0 && core.reload_source().is_some() && cfg.reload_poll.is_some();
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        shard_handles.push(std::thread::spawn(move || {
            shard_loop(rx, reactor, engine, schedule_poll, stop, &cfg)
        }));
    }

    let acceptor_waker = Arc::new(Waker::new()?);
    let mut acceptor_reactor = make_reactor(cfg.reactor, &cfg.clock)?;
    acceptor_reactor.add_waker(Arc::clone(&acceptor_waker), WAKER_TOKEN)?;
    acceptor_reactor.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    stop.subscribe(acceptor_waker);

    let stop_a = Arc::clone(&stop);
    let metrics = cfg.metrics;
    let clock = Arc::clone(&cfg.clock);
    let acceptor = std::thread::spawn(move || {
        acceptor_loop(listener, acceptor_reactor, senders, stop_a, metrics, clock)
    });

    Ok(ServerHandle { addr, stop, oracle: handle, acceptor: Some(acceptor), shards: shard_handles })
}

/// Accept loop: drain every pending connection, hand each to a shard
/// (round-robin, skipping dead shards) and ring that shard's doorbell,
/// then block in the reactor until the listener is readable again or the
/// stop signal rings. No fixed naps: the only sleep left is a short
/// error backoff for accept failures that epoll would otherwise convert
/// into a hot loop (`EMFILE` reports the listener readable forever).
fn acceptor_loop(
    listener: TcpListener,
    mut reactor: Box<dyn Reactor>,
    senders: Vec<(Sender<TcpStream>, Arc<Waker>)>,
    stop: Arc<StopSignal>,
    metrics: bool,
    clock: SharedClock,
) -> Registry {
    let mut reg = if metrics { Registry::new() } else { Registry::disabled() };
    let mut next = 0usize;
    let mut events: Vec<Event> = Vec::new();
    loop {
        if stop.is_stopped() {
            break;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    reg.scope("serve").incr("connections");
                    // A dead shard (panicked) drops its receiver; fall
                    // through to the next one rather than losing the
                    // connection.
                    let mut conn = Some(stream);
                    for i in 0..senders.len() {
                        let (tx, waker) = &senders[(next + i) % senders.len()];
                        match tx.send(conn.take().expect("connection unrouted")) {
                            Ok(()) => {
                                waker.wake();
                                break;
                            }
                            Err(std::sync::mpsc::SendError(c)) => conn = Some(c),
                        }
                    }
                    next = next.wrapping_add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {
                    // The peer gave up between SYN and accept — routine
                    // under mass connects; take the next one.
                    reg.scope("serve").incr("accept_errors");
                }
                Err(_) => {
                    reg.scope("serve").incr("accept_errors");
                    // Error backoff (fd exhaustion, ENOMEM): the pending
                    // connection keeps the listener readable, so waiting
                    // on the reactor would return instantly and spin.
                    clock.sleep(Duration::from_millis(2));
                }
            }
        }
        let _ = reactor.wait(None, &mut events);
    }
    reg
}

/// Re-register a connection when its desired interest changed. A failed
/// re-registration is unrecoverable for the connection (the reactor has
/// lost track of it), so it is closed and counted.
fn sync_interest(
    reactor: &mut Box<dyn Reactor>,
    conn: &mut Conn<TcpStream>,
    draining: bool,
    reg: &mut Registry,
) {
    let want = conn.desired_interest(draining);
    if want == conn.interest || !conn.open {
        return;
    }
    match reactor.reregister(conn.transport().as_raw_fd(), conn.id, want) {
        Ok(()) => conn.interest = want,
        Err(_) => {
            reg.scope("faults").scope("serve").incr("reactor_lost");
            conn.open = false;
        }
    }
}

/// Deadline-wheel key reserved for shard 0's reload poll. Connection
/// ids count up from zero and can never reach it.
const RELOAD_WHEEL_KEY: u64 = u64::MAX;

fn shard_loop(
    rx: Receiver<TcpStream>,
    mut reactor: Box<dyn Reactor>,
    mut engine: Engine,
    schedule_poll: bool,
    stop: Arc<StopSignal>,
    cfg: &ServerCfg,
) -> Registry {
    let clock = Arc::clone(&cfg.clock);
    let mut reg = if cfg.metrics { Registry::new() } else { Registry::disabled() };
    let mut conns: HashMap<u64, Conn<TcpStream>> = HashMap::new();
    // The gauge exists on every shard so the merged export is identical
    // whichever shard (if any) ends up handling a reload.
    reg.scope("oracle").gauge_max("snapshot_version", engine.snapshot_version());
    // Every idle deadline on this shard lives in one wheel, keyed by
    // connection id: scheduled on adoption, pushed out on read activity,
    // popped (→ eviction) when simulated-or-real time passes it. Its
    // next deadline is also the shard's wait timeout — the wheel⇄reactor
    // contract (DESIGN.md §11).
    let mut wheel: DeadlineWheel<u64> = DeadlineWheel::new();
    // The reload poll rides the same wheel on shard 0 only.
    if schedule_poll {
        if let Some(period) = cfg.reload_poll {
            wheel.schedule(RELOAD_WHEEL_KEY, clock.now() + period);
        }
    }
    let mut next_conn_id = 0u64;
    // Set when the stop signal is first observed: replies already queued
    // (the ShutdownAck above all) still get a bounded chance to drain.
    let mut drain_deadline: Option<Duration> = None;
    let mut events: Vec<Event> = Vec::new();

    loop {
        // Adopt newly assigned connections (the acceptor rang our
        // doorbell — or we were between waits anyway).
        while let Ok(stream) = rx.try_recv() {
            reg.scope("sched").scope("serve").incr("connections_assigned");
            let id = next_conn_id;
            next_conn_id += 1;
            let conn = Conn::new(id, stream);
            match reactor.register(conn.transport().as_raw_fd(), id, Interest::READABLE) {
                Ok(()) => {
                    wheel.schedule(id, clock.now() + cfg.idle_timeout);
                    conns.insert(id, conn);
                }
                Err(_) => {
                    // Dropping the stream closes it; the peer sees a
                    // reset rather than a black hole.
                    reg.scope("faults").scope("serve").incr("reactor_lost");
                }
            }
        }
        reg.scope("sched").scope("serve").gauge_max("conns_open", conns.len() as u64);

        if drain_deadline.is_none() && stop.is_stopped() {
            drain_deadline = Some(clock.now() + cfg.drain_timeout);
            // Draining: stop reading everywhere, keep writability only
            // where a backlog remains — a flooding peer must not keep
            // waking a shard that will never answer it again.
            for conn in conns.values_mut() {
                sync_interest(&mut reactor, conn, true, &mut reg);
            }
        }
        let draining = drain_deadline.is_some();

        // Dog food: bounded listen. Stop waiting on a silent peer —
        // whether it has gone quiet or stopped draining replies.
        while let Some((id, _)) = wheel.pop_expired(clock.now()) {
            if id == RELOAD_WHEEL_KEY {
                reg.scope("sched").scope("serve").incr("reload_polls");
                engine.poll_reload(&mut reg);
                if let Some(period) = cfg.reload_poll {
                    wheel.schedule(RELOAD_WHEEL_KEY, clock.now() + period);
                }
                continue;
            }
            if let Some(conn) = conns.get_mut(&id) {
                if conn.open {
                    reg.scope("sched").scope("serve").incr("idle_closed");
                    conn.open = false;
                }
            }
        }
        conns.retain(|id, c| {
            if c.open {
                true
            } else {
                // Deregister before the fd closes on drop so the
                // fallback reactor's table stays truthful (epoll drops
                // closed fds on its own).
                let _ = reactor.deregister(c.transport().as_raw_fd(), *id);
                wheel.cancel(id);
                false
            }
        });

        if let Some(deadline) = drain_deadline {
            let drained = conns.values().all(|c| c.backlog() == 0);
            if drained || clock.now() >= deadline {
                break;
            }
        }

        // Sleep until I/O, a doorbell, or the next deadline this shard
        // owns — idle eviction or the drain bound, whichever is sooner.
        // No deadline and no I/O means a blocking wait: an idle shard
        // costs nothing.
        let mut next_deadline = wheel.next_deadline();
        if let Some(d) = drain_deadline {
            next_deadline = Some(next_deadline.map_or(d, |n| n.min(d)));
        }
        // Round the gap up to whole milliseconds at the conversion site:
        // epoll timeouts are millisecond-granular, and a truncating
        // conversion turns a deadline a few hundred µs out into a zero
        // timeout that spins until it passes.
        let timeout = next_deadline.map(|at| round_wait_up_to_ms(at.saturating_sub(clock.now())));
        if reactor.wait(timeout, &mut events).is_err() {
            // A broken reactor cannot deliver another event; abandoning
            // the shard beats spinning on the error.
            reg.scope("faults").scope("serve").incr("reactor_lost");
            break;
        }
        reg.scope("sched").scope("serve").incr("epoll_wakeups");

        let mut progress = false;
        let mut conn_events = false;
        for &ev in &events {
            if ev.token == WAKER_TOKEN {
                // Doorbell: adoption and stop are handled at the top of
                // the loop.
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            conn_events = true;
            if ev.readable && !draining {
                progress |= engine.service(conn, &mut reg);
            }
            if conn.open && (ev.writable || conn.backlog() > 0) {
                progress |= engine.flush(conn, &mut reg);
            }
            if conn.touched {
                conn.touched = false;
                wheel.schedule(conn.id, clock.now() + cfg.idle_timeout);
            }
            sync_interest(&mut reactor, conn, draining, &mut reg);
        }
        if conn_events && !progress {
            reg.scope("sched").scope("serve").incr("spurious_wakeups");
        }
    }
    reg
}
