//! The oracle daemon: a sharded, thread-per-core, readiness-driven TCP
//! server.
//!
//! One acceptor thread distributes connections round-robin to `shards`
//! worker threads. Each shard owns its connections outright — a
//! [`Reactor`] (epoll on Linux, clock-paced polling under a virtual
//! clock), per-connection reassembly buffers, a per-shard answer cache,
//! and a per-shard [`Registry`] — so the hot path takes no locks and
//! shares no mutable state beyond three global stats counters. Shard
//! registries are merged **in fixed shard order** when the server stops,
//! so the deterministic metric families are byte-identical no matter how
//! connections were scheduled (the scheduling-dependent counters —
//! cache hits, idle closures, wakeup counts, per-shard assignment —
//! live under the `sched/` family, which the JSON export excludes; see
//! DESIGN.md §8).
//!
//! **Nobody spins.** A shard blocks in [`Reactor::wait`] with a timeout
//! derived from its [`DeadlineWheel`] next deadline (idle eviction, the
//! shutdown drain bound), so an idle connection costs ~zero CPU: the
//! shard wakes on I/O readiness, on an eventfd ring from the acceptor
//! (new connection) or a [`StopSignal`] (shutdown), or when a deadline
//! it owns comes due — never on a fixed nap (DESIGN.md §11). Interest
//! flips between readable and writable as a connection's output queue
//! fills and drains.
//!
//! No peer can make a shard wait (DESIGN.md §9). Replies go through a
//! **bounded per-connection output queue** drained on writability with
//! nonblocking writes: a peer that stops reading costs its shard
//! nothing, and is closed outright once [`OUT_QUEUE_CAP`] reply bytes
//! pile up. Reads are budgeted per readiness event ([`READ_BUDGET`]) so
//! one firehose connection cannot starve its shard siblings — the
//! level-triggered reactor simply re-reports the leftover — and a
//! connection idle past the configured timeout is closed rather than
//! waited on forever: bounded listen, not infinite patience, applied to
//! ourselves. Faults handled on the way (write backpressure, queue
//! overflows) are counted under the nondeterministic `faults/` family.

use crate::oracle::{LookupError, Oracle};
use crate::proto::{self, ErrorCode, Message, ProtoError, ReloadKind, Status};
use crate::swap::{OracleHandle, OracleReader};
use beware_dataset::snapshot::{
    prefix_mask, read_delta, read_snapshot, snapshot_checksum, SnapshotError,
};
use beware_policy::{PolicyKind, PolicyTable, PrefixPolicyMap, RttSample, INITIAL_TIMEOUT_SECS};
use beware_runtime::clock::{SharedClock, WallClock};
pub use beware_runtime::reactor::ReactorKind;
use beware_runtime::reactor::{
    make_reactor, round_wait_up_to_ms, Event, Interest, Reactor, StopSignal, Waker,
};
use beware_runtime::swap::{Slot, SlotReader};
use beware_runtime::wheel::DeadlineWheel;
use beware_telemetry::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
///
/// `#[non_exhaustive]`: construct one with [`ServerCfg::builder`] (or
/// take [`ServerCfg::default`] as-is). The fields stay `pub` for
/// reading, but a new knob is no longer a breaking change for every
/// downstream struct literal, and [`ServerCfgBuilder::build`] gets to
/// validate combinations up front.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Worker shards (≥ 1). Each shard is one thread owning a disjoint
    /// set of connections.
    pub shards: usize,
    /// Per-connection idle bound: a connection that stays silent this
    /// long is closed.
    pub idle_timeout: Duration,
    /// After shutdown is requested, shards keep draining queued replies
    /// (most importantly the `ShutdownAck`) for at most this long.
    pub drain_timeout: Duration,
    /// Upper bound on one connection's queued-but-unsent reply bytes;
    /// past it the connection is closed (see [`enqueue_reply`]).
    pub out_queue_cap: usize,
    /// Whether telemetry is recorded.
    pub metrics: bool,
    /// Time source for every deadline and stamp in the server. Wall
    /// time by default; a [`VirtualClock`](beware_runtime::VirtualClock)
    /// handle makes hour-scale idle timeouts testable in milliseconds.
    pub clock: SharedClock,
    /// Readiness source for every shard and the acceptor.
    /// [`ReactorKind::Auto`] (the default) picks epoll for wall clocks
    /// and the clock-paced polling fallback for virtual ones — epoll
    /// would park the OS thread on a timeline that never moves on its
    /// own.
    pub reactor: ReactorKind,
    /// Snapshot source for hot reloads: the file `Reload` admin frames
    /// (and the poller, if enabled) load from — a full `.bwts` snapshot
    /// or a `.bwtd` delta. `None` disables the reload plane; `Reload`
    /// then answers [`ErrorCode::ReloadUnavailable`].
    pub reload_from: Option<PathBuf>,
    /// When set, shard 0 re-reads [`reload_from`](Self::reload_from) on
    /// this period through its deadline wheel — no extra thread, no
    /// fixed nap — and swaps the oracle whenever the file's content no
    /// longer matches the snapshot being served.
    pub reload_poll: Option<Duration>,
    /// When set, the server answers queries from an **online estimator**
    /// of this kind instead of the static snapshot: clients feed it
    /// measured RTTs via `Report` frames, and the per-prefix state is
    /// periodically frozen into a [`PolicyTable`] published through the
    /// same epoch-swap mechanism hot reloads use. `None` (the default)
    /// serves the snapshot; `Report` then answers
    /// [`ErrorCode::PolicyUnavailable`].
    pub policy: Option<PolicyKind>,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_millis(500),
            out_queue_cap: OUT_QUEUE_CAP,
            metrics: true,
            clock: WallClock::shared(),
            reactor: ReactorKind::Auto,
            reload_from: None,
            reload_poll: None,
            policy: None,
        }
    }
}

impl ServerCfg {
    /// Start from the defaults and adjust:
    /// `ServerCfg::builder().shards(2).build()?`.
    pub fn builder() -> ServerCfgBuilder {
        ServerCfgBuilder { cfg: ServerCfg::default() }
    }
}

/// Builder for [`ServerCfg`] — the way to spell a non-default
/// configuration now that the struct is `#[non_exhaustive]`.
/// [`build`](Self::build) validates the combination so a zero shard
/// count or an output queue that cannot hold one reply frame fails at
/// configuration time instead of surfacing as a hung server.
#[derive(Debug, Clone)]
pub struct ServerCfgBuilder {
    cfg: ServerCfg,
}

impl Default for ServerCfgBuilder {
    fn default() -> Self {
        ServerCfg::builder()
    }
}

impl ServerCfgBuilder {
    /// Worker shard count. See [`ServerCfg::shards`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// See [`ServerCfg::idle_timeout`].
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.cfg.idle_timeout = d;
        self
    }

    /// See [`ServerCfg::drain_timeout`].
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.cfg.drain_timeout = d;
        self
    }

    /// See [`ServerCfg::out_queue_cap`].
    pub fn out_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.out_queue_cap = cap;
        self
    }

    /// See [`ServerCfg::metrics`].
    pub fn metrics(mut self, on: bool) -> Self {
        self.cfg.metrics = on;
        self
    }

    /// See [`ServerCfg::clock`].
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.cfg.clock = clock;
        self
    }

    /// See [`ServerCfg::reactor`].
    pub fn reactor(mut self, kind: ReactorKind) -> Self {
        self.cfg.reactor = kind;
        self
    }

    /// See [`ServerCfg::reload_from`].
    pub fn reload_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.reload_from = Some(path.into());
        self
    }

    /// See [`ServerCfg::reload_poll`]. Requires a reload source.
    pub fn reload_poll(mut self, period: Duration) -> Self {
        self.cfg.reload_poll = Some(period);
        self
    }

    /// See [`ServerCfg::policy`]. [`PolicyKind::Oracle`] means "serve the
    /// snapshot" and is the same as not setting a policy at all.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.cfg.policy = match kind {
            PolicyKind::Oracle => None,
            online => Some(online),
        };
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServerCfg, ConfigError> {
        let cfg = self.cfg;
        if cfg.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if cfg.idle_timeout.is_zero() {
            return Err(ConfigError::ZeroIdleTimeout);
        }
        let min = proto::MAX_FRAME + 2;
        if cfg.out_queue_cap < min {
            return Err(ConfigError::QueueCapTooSmall { min, got: cfg.out_queue_cap });
        }
        match cfg.reload_poll {
            Some(_) if cfg.reload_from.is_none() => return Err(ConfigError::PollWithoutSource),
            Some(p) if p.is_zero() => return Err(ConfigError::ZeroReloadPoll),
            _ => {}
        }
        Ok(cfg)
    }
}

/// Why [`ServerCfgBuilder::build`] refused a configuration.
///
/// `#[non_exhaustive]`: validation grows with the config surface.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `shards == 0`: the server would accept and never answer.
    ZeroShards,
    /// A zero idle timeout would evict every connection on its first
    /// wheel tick.
    ZeroIdleTimeout,
    /// The output queue cannot hold even one maximum-size reply frame,
    /// so every connection would be closed on its first answer.
    QueueCapTooSmall {
        /// Smallest workable cap (one encoded max-size frame).
        min: usize,
        /// The cap that was requested.
        got: usize,
    },
    /// `reload_poll` was set without `reload_from`: nothing to poll.
    PollWithoutSource,
    /// A zero poll period would busy-loop shard 0.
    ZeroReloadPoll,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::ZeroIdleTimeout => write!(f, "idle timeout must be nonzero"),
            ConfigError::QueueCapTooSmall { min, got } => {
                write!(f, "output queue cap {got} cannot hold one reply frame (min {min})")
            }
            ConfigError::PollWithoutSource => {
                write!(f, "reload poll requires a reload source (reload_from)")
            }
            ConfigError::ZeroReloadPoll => write!(f, "reload poll period must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Aggregate counters served by the `Stats` request. Shared across
/// shards; relaxed ordering is fine for monotone counters.
#[derive(Debug, Default)]
struct GlobalStats {
    queries: AtomicU64,
    hits_exact: AtomicU64,
    hits_fallback: AtomicU64,
    reports: AtomicU64,
}

/// How many absorbed `Report`s between [`PolicyTable`] publications.
/// Small enough that a fresh estimate reaches the read path promptly,
/// large enough that the freeze-and-swap cost amortizes.
const POLICY_PUBLISH_EVERY: u64 = 64;

/// The online-estimator plane, shared by every shard when
/// [`ServerCfg::policy`] is set. The mutable per-prefix map lives behind
/// a mutex touched only by `Report` handling; the read path answers
/// from the last published [`PolicyTable`] through a lock-free slot
/// reader — a query never waits on a report.
struct PolicyCtx {
    map: Mutex<PrefixPolicyMap>,
    table: Slot<PolicyTable>,
}

impl PolicyCtx {
    fn new(kind: PolicyKind) -> PolicyCtx {
        let map = PrefixPolicyMap::for_kind(kind);
        let empty = PolicyTable::empty(map.prefix_len(), INITIAL_TIMEOUT_SECS);
        PolicyCtx { map: Mutex::new(map), table: Slot::new(Arc::new(empty)) }
    }

    /// Absorb one RTT report; freeze and publish the table on the very
    /// first report and every [`POLICY_PUBLISH_EVERY`] thereafter.
    /// Returns the running report count.
    ///
    /// Publishing on the first report matters on low-traffic prefixes: a
    /// publish-every-64 cadence alone leaves readers on the initial empty
    /// boot table indefinitely when fewer than 64 reports ever arrive.
    fn absorb(&self, addr: u32, rtt_us: u32, stats: &GlobalStats) -> u64 {
        let mut map = self.map.lock().expect("policy map poisoned");
        let n = stats.reports.fetch_add(1, Ordering::Relaxed) + 1;
        // Estimators key on order, not wall time; the report sequence
        // number is a deterministic monotone stand-in.
        map.observe(addr, RttSample::new(f64::from(rtt_us) / 1e6, n as f64));
        if n == 1 || n.is_multiple_of(POLICY_PUBLISH_EVERY) {
            self.table.publish(Arc::new(map.snapshot_table(INITIAL_TIMEOUT_SECS)));
        }
        n
    }
}

/// A shard's view of the policy plane: the shared context plus its own
/// lock-free table reader.
struct PolicyPlane {
    ctx: Arc<PolicyCtx>,
    reader: SlotReader<PolicyTable>,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] leaves the threads running detached until a
/// `Shutdown` frame arrives.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<StopSignal>,
    oracle: OracleHandle,
    acceptor: Option<JoinHandle<Registry>>,
    shards: Vec<JoinHandle<Registry>>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The swappable oracle slot this server answers from. Publishing
    /// through it is an in-process hot reload — every shard picks up
    /// the new snapshot on its next request, mid-connection, with no
    /// listener downtime.
    pub fn oracle(&self) -> &OracleHandle {
        &self.oracle
    }

    /// Request shutdown from in-process (equivalent to a `Shutdown`
    /// frame): raises the stop flag and rings every shard's and the
    /// acceptor's wakeup doorbell, so threads blocked in
    /// [`Reactor::wait`] notice immediately.
    pub fn shutdown(&self) {
        self.stop.request_stop();
    }

    /// Wait for the server to stop (via [`shutdown`](Self::shutdown) or a
    /// `Shutdown` frame) and return the merged telemetry: acceptor first,
    /// then every shard in index order — the fixed merge order the
    /// determinism contract requires.
    pub fn join(mut self) -> Registry {
        let mut merged = self
            .acceptor
            .take()
            .expect("join called once")
            .join()
            .expect("acceptor thread panicked");
        for shard in self.shards.drain(..) {
            merged.merge(&shard.join().expect("shard thread panicked"));
        }
        merged
    }
}

/// Token every reactor reserves for its wakeup doorbell; connection
/// tokens count up from zero and can never collide with it.
const WAKER_TOKEN: u64 = u64::MAX;
/// The acceptor's token for the listening socket.
const LISTENER_TOKEN: u64 = 0;

/// Bind and start serving `oracle` on `bind` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port).
///
/// `oracle` is anything convertible into an [`OracleHandle`]: a bare
/// [`Oracle`] or `Arc<Oracle>` wraps into a fresh slot at version 1;
/// passing an existing handle shares the slot, so the caller can
/// publish hot reloads from outside the server.
pub fn start(
    oracle: impl Into<OracleHandle>,
    bind: impl ToSocketAddrs,
    cfg: ServerCfg,
) -> io::Result<ServerHandle> {
    let handle = oracle.into();
    let shards = cfg.shards.max(1);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(StopSignal::new());
    let stats = Arc::new(GlobalStats::default());
    let policy = cfg.policy.map(|kind| Arc::new(PolicyCtx::new(kind)));
    let reload = Arc::new(ReloadCtx {
        handle: handle.clone(),
        source: cfg.reload_from.clone(),
        lock: Mutex::new(()),
    });

    // Reactors and doorbells are created here, not in the threads, so a
    // resource failure (fd limit, unsupported platform) surfaces as an
    // `Err` from `start` instead of a dead shard.
    let mut senders: Vec<(Sender<TcpStream>, Arc<Waker>)> = Vec::with_capacity(shards);
    let mut shard_handles = Vec::with_capacity(shards);
    for shard_index in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        let waker = Arc::new(Waker::new()?);
        let mut reactor = make_reactor(cfg.reactor, &cfg.clock)?;
        reactor.add_waker(Arc::clone(&waker), WAKER_TOKEN)?;
        stop.subscribe(Arc::clone(&waker));
        senders.push((tx, waker));
        let reader = handle.reader();
        let reload = Arc::clone(&reload);
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let policy = policy.as_ref().map(Arc::clone);
        let cfg = cfg.clone();
        shard_handles.push(std::thread::spawn(move || {
            shard_loop(rx, reactor, reader, reload, policy, shard_index, stop, stats, &cfg)
        }));
    }

    let acceptor_waker = Arc::new(Waker::new()?);
    let mut acceptor_reactor = make_reactor(cfg.reactor, &cfg.clock)?;
    acceptor_reactor.add_waker(Arc::clone(&acceptor_waker), WAKER_TOKEN)?;
    acceptor_reactor.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    stop.subscribe(acceptor_waker);

    let stop_a = Arc::clone(&stop);
    let metrics = cfg.metrics;
    let clock = Arc::clone(&cfg.clock);
    let acceptor = std::thread::spawn(move || {
        acceptor_loop(listener, acceptor_reactor, senders, stop_a, metrics, clock)
    });

    Ok(ServerHandle { addr, stop, oracle: handle, acceptor: Some(acceptor), shards: shard_handles })
}

/// Everything a shard needs to execute a reload: the slot to publish
/// into, the configured source path, and a lock that makes each
/// reload's read-base → apply → publish sequence atomic against
/// concurrent reloads on other shards (without it, two racing delta
/// reloads could both read the same base and the loser would publish a
/// snapshot the winner's delta never saw).
struct ReloadCtx {
    handle: OracleHandle,
    source: Option<PathBuf>,
    lock: Mutex<()>,
}

/// What a reload attempt did.
enum ReloadOutcome {
    /// A new oracle was published at `version`.
    Swapped { version: u64, entries: u32, checksum: u64 },
    /// Poll only: the source already matches what is being served.
    Unchanged,
    /// The delta was computed against a base that is not the serving
    /// snapshot.
    Stale,
    /// Corrupt or invalid source; the serving snapshot is untouched.
    Rejected,
}

/// Decode `bytes` as a snapshot source (full or delta), apply, and
/// publish. With `explicit` the kind is the operator's claim — a
/// mismatched magic decodes as garbage and is `Rejected`. `None` (the
/// poller) sniffs the magic and reports an already-applied source as
/// `Unchanged`, which is what makes polling idempotent.
fn apply_reload(ctx: &ReloadCtx, bytes: &[u8], explicit: Option<ReloadKind>) -> ReloadOutcome {
    let _guard = ctx.lock.lock().expect("reload lock poisoned");
    let current = ctx.handle.current();
    let is_delta = match explicit {
        Some(ReloadKind::Full) => false,
        Some(ReloadKind::Delta) => true,
        None => bytes.starts_with(b"BWTD"),
    };
    let built = if is_delta {
        let Ok(delta) = read_delta(&mut &bytes[..]) else { return ReloadOutcome::Rejected };
        if explicit.is_none() && delta.target_checksum == current.checksum() {
            return ReloadOutcome::Unchanged;
        }
        // The base the delta applies to is reconstructed from the
        // serving oracle itself — `apply` then enforces the base
        // checksum, so a delta against any other generation is Stale.
        match delta.apply(&current.to_snapshot()) {
            Ok(snap) => Oracle::from_snapshot(snap),
            Err(SnapshotError::StaleDelta { .. }) => return ReloadOutcome::Stale,
            Err(_) => return ReloadOutcome::Rejected,
        }
    } else {
        let Ok(snap) = read_snapshot(&mut &bytes[..]) else { return ReloadOutcome::Rejected };
        if explicit.is_none() && snapshot_checksum(&snap) == current.checksum() {
            return ReloadOutcome::Unchanged;
        }
        Oracle::from_snapshot(snap)
    };
    match built {
        Ok(oracle) => {
            let entries = oracle.entry_count() as u32;
            let checksum = oracle.checksum();
            let version = ctx.handle.publish(Arc::new(oracle));
            ReloadOutcome::Swapped { version, entries, checksum }
        }
        Err(_) => ReloadOutcome::Rejected,
    }
}

/// Execute an explicit `Reload` admin frame against the configured
/// source, accounting under `oracle/`.
fn admin_reload(kind: ReloadKind, ctx: &ReloadCtx, reg: &mut Registry) -> Message {
    let Some(path) = ctx.source.as_ref() else {
        reg.scope("oracle").incr("reload_failures");
        return Message::Error { code: ErrorCode::ReloadUnavailable };
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => {
            reg.scope("oracle").incr("reload_failures");
            return Message::Error { code: ErrorCode::SnapshotRejected };
        }
    };
    match apply_reload(ctx, &bytes, Some(kind)) {
        ReloadOutcome::Swapped { version, entries, checksum } => {
            let mut oracle_scope = reg.scope("oracle");
            oracle_scope.incr("reloads");
            oracle_scope.gauge_max("snapshot_version", version);
            Message::SnapshotInfoReply { version, entries, checksum }
        }
        ReloadOutcome::Stale => {
            reg.scope("oracle").incr("stale_delta_rejected");
            Message::Error { code: ErrorCode::StaleDelta }
        }
        ReloadOutcome::Rejected | ReloadOutcome::Unchanged => {
            reg.scope("oracle").incr("reload_failures");
            Message::Error { code: ErrorCode::SnapshotRejected }
        }
    }
}

/// One wheel-scheduled poll of the reload source. A read failure is
/// transient by assumption (the file is mid-copy or not yet dropped)
/// and counted under `sched/`; decode and apply failures are operator
/// mistakes and land under `oracle/` where dashboards watch.
fn poll_reload(ctx: &ReloadCtx, reg: &mut Registry) {
    let Some(path) = ctx.source.as_ref() else { return };
    let Ok(bytes) = std::fs::read(path) else {
        reg.scope("sched").scope("serve").incr("reload_poll_errors");
        return;
    };
    match apply_reload(ctx, &bytes, None) {
        ReloadOutcome::Swapped { version, .. } => {
            let mut oracle_scope = reg.scope("oracle");
            oracle_scope.incr("reloads");
            oracle_scope.gauge_max("snapshot_version", version);
        }
        ReloadOutcome::Unchanged => {}
        ReloadOutcome::Stale => {
            reg.scope("oracle").incr("stale_delta_rejected");
        }
        ReloadOutcome::Rejected => {
            reg.scope("oracle").incr("reload_failures");
        }
    }
}

/// Accept loop: drain every pending connection, hand each to a shard
/// (round-robin, skipping dead shards) and ring that shard's doorbell,
/// then block in the reactor until the listener is readable again or the
/// stop signal rings. No fixed naps: the only sleep left is a short
/// error backoff for accept failures that epoll would otherwise convert
/// into a hot loop (`EMFILE` reports the listener readable forever).
fn acceptor_loop(
    listener: TcpListener,
    mut reactor: Box<dyn Reactor>,
    senders: Vec<(Sender<TcpStream>, Arc<Waker>)>,
    stop: Arc<StopSignal>,
    metrics: bool,
    clock: SharedClock,
) -> Registry {
    let mut reg = if metrics { Registry::new() } else { Registry::disabled() };
    let mut next = 0usize;
    let mut events: Vec<Event> = Vec::new();
    loop {
        if stop.is_stopped() {
            break;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    reg.scope("serve").incr("connections");
                    // A dead shard (panicked) drops its receiver; fall
                    // through to the next one rather than losing the
                    // connection.
                    let mut conn = Some(stream);
                    for i in 0..senders.len() {
                        let (tx, waker) = &senders[(next + i) % senders.len()];
                        match tx.send(conn.take().expect("connection unrouted")) {
                            Ok(()) => {
                                waker.wake();
                                break;
                            }
                            Err(std::sync::mpsc::SendError(c)) => conn = Some(c),
                        }
                    }
                    next = next.wrapping_add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {
                    // The peer gave up between SYN and accept — routine
                    // under mass connects; take the next one.
                    reg.scope("serve").incr("accept_errors");
                }
                Err(_) => {
                    reg.scope("serve").incr("accept_errors");
                    // Error backoff (fd exhaustion, ENOMEM): the pending
                    // connection keeps the listener readable, so waiting
                    // on the reactor would return instantly and spin.
                    clock.sleep(Duration::from_millis(2));
                }
            }
        }
        let _ = reactor.wait(None, &mut events);
    }
    reg
}

/// One connection owned by a shard.
struct Conn {
    /// Shard-local identity — the reactor registration token and the key
    /// of this connection's idle deadline on the shard's
    /// [`DeadlineWheel`].
    id: u64,
    stream: TcpStream,
    /// Reassembly buffer for partially received frames.
    buf: Vec<u8>,
    /// Bounded outbound queue. Replies are *enqueued* here and drained
    /// on writability with nonblocking writes — the shard never waits on
    /// a peer's receive window, so one connection that stops reading
    /// cannot head-of-line-block every other connection on the shard
    /// (the old `write_all_nb` sleep-retry loop did exactly that).
    out: Vec<u8>,
    /// Offset of the not-yet-written suffix of `out`.
    out_pos: usize,
    open: bool,
    /// Reply of record is queued (error frame, shutdown ack): stop
    /// reading, close once `out` drains.
    close_after_flush: bool,
    /// Read activity since the last service pass; the shard loop pushes
    /// the idle deadline out (reschedules the wheel) when set.
    touched: bool,
    /// The interest currently registered with the reactor; flipped to
    /// include writability exactly while a backlog exists.
    interest: Interest,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            open: true,
            close_after_flush: false,
            touched: false,
            interest: Interest::READABLE,
        }
    }

    /// Bytes queued but not yet on the wire.
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// The interest this connection's state wants registered: readable
    /// while we still accept requests, writable exactly while a backlog
    /// exists.
    fn desired_interest(&self, draining: bool) -> Interest {
        let mut want = Interest::NONE;
        if !self.close_after_flush && !draining {
            want = want.and(Interest::READABLE);
        }
        if self.backlog() > 0 {
            want = want.and(Interest::WRITABLE);
        }
        want
    }
}

/// Per-shard answer cache cap; the cache is cleared wholesale when full
/// (queries repeat heavily under load, so wholesale eviction is rare and
/// keeps the structure trivial).
const CACHE_CAP: usize = 8192;

/// Default for [`ServerCfg::out_queue_cap`]: the upper bound on one
/// connection's queued-but-unsent reply bytes. A peer that keeps sending
/// queries without draining its answers is a slow reader at best and an
/// attacker at worst; past this bound the connection is closed
/// (`faults/serve/queue_overflow_closed`) instead of buffering without
/// limit.
const OUT_QUEUE_CAP: usize = 64 * 1024;

/// Per-connection, per-readiness-event read budget. One firehose
/// connection may fill at most this many bytes before the shard moves on
/// to its siblings' events; the level-triggered reactor re-reports the
/// leftover on the next wait, so ingress bandwidth is shared round-robin
/// instead of drained connection-by-connection.
const READ_BUDGET: usize = 16 * 1024;

/// Re-register a connection when its desired interest changed. A failed
/// re-registration is unrecoverable for the connection (the reactor has
/// lost track of it), so it is closed and counted.
fn sync_interest(
    reactor: &mut Box<dyn Reactor>,
    conn: &mut Conn,
    draining: bool,
    reg: &mut Registry,
) {
    let want = conn.desired_interest(draining);
    if want == conn.interest || !conn.open {
        return;
    }
    match reactor.reregister(conn.stream.as_raw_fd(), conn.id, want) {
        Ok(()) => conn.interest = want,
        Err(_) => {
            reg.scope("faults").scope("serve").incr("reactor_lost");
            conn.open = false;
        }
    }
}

/// Deadline-wheel key reserved for shard 0's reload poll. Connection
/// ids count up from zero and can never reach it.
const RELOAD_WHEEL_KEY: u64 = u64::MAX;

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    rx: Receiver<TcpStream>,
    mut reactor: Box<dyn Reactor>,
    mut reader: OracleReader,
    reload: Arc<ReloadCtx>,
    policy: Option<Arc<PolicyCtx>>,
    shard_index: usize,
    stop: Arc<StopSignal>,
    stats: Arc<GlobalStats>,
    cfg: &ServerCfg,
) -> Registry {
    let mut policy = policy.map(|ctx| PolicyPlane { reader: ctx.table.reader(), ctx });
    let clock = Arc::clone(&cfg.clock);
    let mut reg = if cfg.metrics { Registry::new() } else { Registry::disabled() };
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut cache: HashMap<(u32, u16, u16), Message> = HashMap::new();
    // Snapshot version the cache's entries were answered from; a swap
    // invalidates them wholesale (see `handle_request`).
    let mut cache_version = reader.version();
    // The gauge exists on every shard so the merged export is identical
    // whichever shard (if any) ends up handling a reload.
    reg.scope("oracle").gauge_max("snapshot_version", reader.version());
    let mut scratch = [0u8; 4096];
    // Every idle deadline on this shard lives in one wheel, keyed by
    // connection id: scheduled on adoption, pushed out on read activity,
    // popped (→ eviction) when simulated-or-real time passes it. Its
    // next deadline is also the shard's wait timeout — the wheel⇄reactor
    // contract (DESIGN.md §11).
    let mut wheel: DeadlineWheel<u64> = DeadlineWheel::new();
    // The reload poll rides the same wheel on shard 0 only — one poller
    // per server; every shard can still execute an admin `Reload`.
    if shard_index == 0 && reload.source.is_some() {
        if let Some(period) = cfg.reload_poll {
            wheel.schedule(RELOAD_WHEEL_KEY, clock.now() + period);
        }
    }
    let mut next_conn_id = 0u64;
    // Set when the stop signal is first observed: replies already queued
    // (the ShutdownAck above all) still get a bounded chance to drain.
    let mut drain_deadline: Option<Duration> = None;
    let mut events: Vec<Event> = Vec::new();

    loop {
        // Adopt newly assigned connections (the acceptor rang our
        // doorbell — or we were between waits anyway).
        while let Ok(stream) = rx.try_recv() {
            reg.scope("sched").scope("serve").incr("connections_assigned");
            let id = next_conn_id;
            next_conn_id += 1;
            let conn = Conn::new(id, stream);
            match reactor.register(conn.stream.as_raw_fd(), id, Interest::READABLE) {
                Ok(()) => {
                    wheel.schedule(id, clock.now() + cfg.idle_timeout);
                    conns.insert(id, conn);
                }
                Err(_) => {
                    // Dropping the stream closes it; the peer sees a
                    // reset rather than a black hole.
                    reg.scope("faults").scope("serve").incr("reactor_lost");
                }
            }
        }
        reg.scope("sched").scope("serve").gauge_max("conns_open", conns.len() as u64);

        if drain_deadline.is_none() && stop.is_stopped() {
            drain_deadline = Some(clock.now() + cfg.drain_timeout);
            // Draining: stop reading everywhere, keep writability only
            // where a backlog remains — a flooding peer must not keep
            // waking a shard that will never answer it again.
            for conn in conns.values_mut() {
                sync_interest(&mut reactor, conn, true, &mut reg);
            }
        }
        let draining = drain_deadline.is_some();

        // Dog food: bounded listen. Stop waiting on a silent peer —
        // whether it has gone quiet or stopped draining replies.
        while let Some((id, _)) = wheel.pop_expired(clock.now()) {
            if id == RELOAD_WHEEL_KEY {
                reg.scope("sched").scope("serve").incr("reload_polls");
                poll_reload(&reload, &mut reg);
                if let Some(period) = cfg.reload_poll {
                    wheel.schedule(RELOAD_WHEEL_KEY, clock.now() + period);
                }
                continue;
            }
            if let Some(conn) = conns.get_mut(&id) {
                if conn.open {
                    reg.scope("sched").scope("serve").incr("idle_closed");
                    conn.open = false;
                }
            }
        }
        conns.retain(|id, c| {
            if c.open {
                true
            } else {
                // Deregister before the fd closes on drop so the
                // fallback reactor's table stays truthful (epoll drops
                // closed fds on its own).
                let _ = reactor.deregister(c.stream.as_raw_fd(), *id);
                wheel.cancel(id);
                false
            }
        });

        if let Some(deadline) = drain_deadline {
            let drained = conns.values().all(|c| c.backlog() == 0);
            if drained || clock.now() >= deadline {
                break;
            }
        }

        // Sleep until I/O, a doorbell, or the next deadline this shard
        // owns — idle eviction or the drain bound, whichever is sooner.
        // No deadline and no I/O means a blocking wait: an idle shard
        // costs nothing.
        let mut next_deadline = wheel.next_deadline();
        if let Some(d) = drain_deadline {
            next_deadline = Some(next_deadline.map_or(d, |n| n.min(d)));
        }
        // Round the gap up to whole milliseconds at the conversion site:
        // epoll timeouts are millisecond-granular, and a truncating
        // conversion turns a deadline a few hundred µs out into a zero
        // timeout that spins until it passes.
        let timeout = next_deadline.map(|at| round_wait_up_to_ms(at.saturating_sub(clock.now())));
        if reactor.wait(timeout, &mut events).is_err() {
            // A broken reactor cannot deliver another event; abandoning
            // the shard beats spinning on the error.
            reg.scope("faults").scope("serve").incr("reactor_lost");
            break;
        }
        reg.scope("sched").scope("serve").incr("epoll_wakeups");

        let mut progress = false;
        let mut conn_events = false;
        for &ev in &events {
            if ev.token == WAKER_TOKEN {
                // Doorbell: adoption and stop are handled at the top of
                // the loop.
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            conn_events = true;
            if ev.readable && !draining {
                progress |= service_conn(
                    conn,
                    &mut reader,
                    &reload,
                    policy.as_mut(),
                    &stop,
                    &stats,
                    &mut cache,
                    &mut cache_version,
                    &mut reg,
                    &mut scratch,
                    &clock,
                    cfg.out_queue_cap,
                );
            }
            if conn.open && (ev.writable || conn.backlog() > 0) {
                progress |= flush_conn(conn, &mut reg, cfg.out_queue_cap);
            }
            if conn.touched {
                conn.touched = false;
                wheel.schedule(conn.id, clock.now() + cfg.idle_timeout);
            }
            sync_interest(&mut reactor, conn, draining, &mut reg);
        }
        if conn_events && !progress {
            reg.scope("sched").scope("serve").incr("spurious_wakeups");
        }
    }
    reg
}

/// Nonblocking drain of one connection's output queue. Never waits: a
/// full peer window surfaces as `faults/serve/write_backpressure` plus a
/// writable-interest registration, and the remaining bytes stay queued
/// until the reactor reports writability.
fn flush_conn(conn: &mut Conn, reg: &mut Registry, out_queue_cap: usize) -> bool {
    let mut progress = false;
    while conn.open && conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.open = false;
            }
            Ok(n) => {
                conn.out_pos += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reg.scope("faults").scope("serve").incr("write_backpressure");
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.open = false;
            }
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_flush {
            conn.open = false;
        }
    } else if conn.out_pos >= out_queue_cap / 2 {
        // Keep the queue's memory proportional to the *unsent* bytes.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    progress
}

/// Queue a reply frame on a connection, enforcing the output bound. A
/// peer that has let [`ServerCfg::out_queue_cap`] bytes pile up is cut
/// off.
fn enqueue_reply(conn: &mut Conn, frame: &[u8], reg: &mut Registry, out_queue_cap: usize) {
    if conn.backlog() + frame.len() > out_queue_cap {
        reg.scope("faults").scope("serve").incr("queue_overflow_closed");
        conn.open = false;
        return;
    }
    conn.out.extend_from_slice(frame);
}

/// Pump one connection: read what is available (bounded by
/// [`READ_BUDGET`]), decode, and queue a reply for every complete frame.
/// Returns true when any byte moved.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    conn: &mut Conn,
    reader: &mut OracleReader,
    reload: &ReloadCtx,
    mut policy: Option<&mut PolicyPlane>,
    stop: &StopSignal,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    cache_version: &mut u64,
    reg: &mut Registry,
    scratch: &mut [u8],
    clock: &SharedClock,
    out_queue_cap: usize,
) -> bool {
    let mut progress = false;
    let mut budget = READ_BUDGET;
    while conn.open && !conn.close_after_flush {
        if budget == 0 {
            // Fairness: leave the rest for the next readiness report so
            // a firehose peer cannot starve its shard siblings.
            reg.scope("sched").scope("serve").incr("read_budget_deferrals");
            break;
        }
        let want = scratch.len().min(budget);
        match conn.stream.read(&mut scratch[..want]) {
            Ok(0) => {
                conn.open = false;
                break;
            }
            Ok(n) => {
                budget -= n;
                reg.scope("serve").add("bytes_in", n as u64);
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.touched = true;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.open = false;
                break;
            }
        }
    }

    let mut consumed = 0usize;
    while conn.open && !conn.close_after_flush {
        match proto::try_decode(&conn.buf[consumed..]) {
            Ok(Some((msg, used))) => {
                consumed += used;
                let t0 = clock.now();
                let (reply, close) = handle_request(
                    &msg,
                    reader,
                    reload,
                    policy.as_deref_mut(),
                    stop,
                    stats,
                    cache,
                    cache_version,
                    reg,
                );
                let frame = proto::encode(&reply);
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                enqueue_reply(conn, &frame, reg, out_queue_cap);
                let ns = u64::try_from(clock.since(t0).as_nanos()).unwrap_or(u64::MAX);
                reg.scope("walltime").scope("serve").observe("request_ns", ns);
                if close {
                    conn.close_after_flush = true;
                }
                progress = true;
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is lost: queue one error report, then close
                // once it has drained.
                reg.scope("serve").incr("proto_errors");
                let code = match e {
                    ProtoError::Version(_) => ErrorCode::BadVersion,
                    _ => ErrorCode::Malformed,
                };
                let frame = proto::encode(&Message::Error { code });
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                enqueue_reply(conn, &frame, reg, out_queue_cap);
                conn.close_after_flush = true;
                progress = true;
            }
        }
    }
    conn.buf.drain(..consumed);
    progress
}

/// Dispatch one decoded request. Returns the reply and whether the
/// connection should close afterwards.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    msg: &Message,
    reader: &mut OracleReader,
    reload: &ReloadCtx,
    policy: Option<&mut PolicyPlane>,
    stop: &StopSignal,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    cache_version: &mut u64,
    reg: &mut Registry,
) -> (Message, bool) {
    let mut serve = reg.scope("serve");
    serve.incr("requests");
    match *msg {
        Message::Query { addr, addr_pct_tenths, ping_pct_tenths } => {
            serve.incr("queries");
            stats.queries.fetch_add(1, Ordering::Relaxed);
            if let Some(plane) = policy {
                // Policy mode: answer from the last published estimator
                // table. Coverage percentiles don't apply to an online
                // estimate; they are accepted and ignored so clients need
                // no mode-specific query. No reply cache either — the
                // table turns over every few reports, so a cache would
                // mostly serve invalidation.
                let table = plane.reader.current();
                let ans = table.lookup(addr);
                let (status, prefix, prefix_len) = if ans.exact {
                    (Status::Exact, addr & prefix_mask(table.prefix_len()), table.prefix_len())
                } else {
                    (Status::Fallback, 0, 0)
                };
                bump_hit(stats, reg, status);
                return (
                    Message::Answer {
                        status,
                        timeout_bits: ans.timeout_secs.to_bits(),
                        prefix,
                        prefix_len,
                    },
                    false,
                );
            }
            // Resolve the oracle exactly once; the whole answer comes
            // from this one immutable snapshot, so a swap mid-request
            // can never produce a torn reply.
            let oracle = Arc::clone(reader.current());
            if reader.version() != *cache_version {
                // Cached replies belong to the previous snapshot.
                cache.clear();
                *cache_version = reader.version();
            }
            let key = (addr, addr_pct_tenths, ping_pct_tenths);
            if let Some(&cached) = cache.get(&key) {
                reg.scope("sched").scope("serve").incr("cache_hits");
                // Deterministic per-request counters must not depend on
                // whether this shard's cache happened to hold the reply.
                match cached {
                    Message::Answer { status, .. } => bump_hit(stats, reg, status),
                    Message::Error { .. } => {
                        reg.scope("serve").incr("errors_unsupported_pct");
                    }
                    _ => {}
                }
                return (cached, false);
            }
            reg.scope("sched").scope("serve").incr("cache_misses");
            let reply = match oracle.lookup(addr, addr_pct_tenths, ping_pct_tenths) {
                Ok(ans) => {
                    bump_hit(stats, reg, ans.status);
                    Message::Answer {
                        status: ans.status,
                        timeout_bits: ans.timeout_bits,
                        prefix: ans.prefix,
                        prefix_len: ans.prefix_len,
                    }
                }
                Err(LookupError::UnsupportedAddressPercentile(_))
                | Err(LookupError::UnsupportedPingPercentile(_)) => {
                    reg.scope("serve").incr("errors_unsupported_pct");
                    Message::Error { code: ErrorCode::UnsupportedPercentile }
                }
            };
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, reply);
            (reply, false)
        }
        Message::Stats => {
            serve.incr("stats_requests");
            (
                Message::StatsReply {
                    queries: stats.queries.load(Ordering::Relaxed),
                    hits_exact: stats.hits_exact.load(Ordering::Relaxed),
                    hits_fallback: stats.hits_fallback.load(Ordering::Relaxed),
                },
                false,
            )
        }
        Message::SnapshotInfo => {
            serve.incr("info_requests");
            // `current()` refreshes the cached pair under the slot lock,
            // so the (version, oracle) this reply reports is consistent.
            let oracle = Arc::clone(reader.current());
            (
                Message::SnapshotInfoReply {
                    version: reader.version(),
                    entries: oracle.entry_count() as u32,
                    checksum: oracle.checksum(),
                },
                false,
            )
        }
        Message::Reload { kind } => {
            serve.incr("reload_requests");
            (admin_reload(kind, reload, reg), false)
        }
        Message::Report { addr, rtt_us } => {
            serve.incr("report_requests");
            match policy {
                Some(plane) => {
                    let reports = plane.ctx.absorb(addr, rtt_us, stats);
                    (Message::ReportAck { reports }, false)
                }
                None => {
                    reg.scope("serve").incr("errors_policy_unavailable");
                    (Message::Error { code: ErrorCode::PolicyUnavailable }, false)
                }
            }
        }
        Message::Shutdown => {
            serve.incr("shutdown_requests");
            // Raise the flag *and* ring every shard and the acceptor —
            // they are blocked in their reactors, not polling a flag.
            stop.request_stop();
            (Message::ShutdownAck, true)
        }
        // A reply opcode arriving as a request is a confused client.
        _ => {
            serve.incr("errors_bad_request");
            (Message::Error { code: ErrorCode::UnknownOpcode }, false)
        }
    }
}

fn bump_hit(stats: &GlobalStats, reg: &mut Registry, status: Status) {
    match status {
        Status::Exact => {
            stats.hits_exact.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_exact");
        }
        Status::Fallback => {
            stats.hits_fallback.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_fallback");
        }
    }
}
