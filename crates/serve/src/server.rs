//! The oracle daemon: a sharded, thread-per-core TCP server.
//!
//! One acceptor thread distributes connections round-robin to `shards`
//! worker threads. Each shard owns its connections outright — a small
//! nonblocking read loop with per-connection reassembly buffers, a
//! per-shard answer cache, and a per-shard [`Registry`] — so the hot path
//! takes no locks and shares no mutable state beyond three global stats
//! counters. Shard registries are merged **in fixed shard order** when
//! the server stops, so the deterministic metric families are
//! byte-identical no matter how connections were scheduled (the
//! scheduling-dependent counters — cache hits, idle closures, per-shard
//! assignment — live under the `sched/` family, which the JSON export
//! excludes; see DESIGN.md §8).
//!
//! No peer can make a shard wait (DESIGN.md §9). Replies go through a
//! **bounded per-connection output queue** drained by the poll loop with
//! nonblocking writes: a peer that stops reading costs its shard nothing,
//! and is closed outright once [`OUT_QUEUE_CAP`] reply bytes pile up.
//! Reads are budgeted per poll iteration ([`READ_BUDGET`]) so one
//! firehose connection cannot starve its shard siblings, and a
//! connection idle past the configured timeout is closed rather than
//! waited on forever — bounded listen, not infinite patience, applied to
//! ourselves. Faults handled on the way (write backpressure, queue
//! overflows) are counted under the nondeterministic `faults/` family.

use crate::oracle::{LookupError, Oracle};
use crate::proto::{self, ErrorCode, Message, ProtoError, Status};
use beware_runtime::clock::{SharedClock, WallClock};
use beware_runtime::wheel::DeadlineWheel;
use beware_telemetry::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Worker shards (≥ 1). Each shard is one thread owning a disjoint
    /// set of connections.
    pub shards: usize,
    /// Per-connection idle bound: a connection that stays silent this
    /// long is closed.
    pub idle_timeout: Duration,
    /// After shutdown is requested, shards keep draining queued replies
    /// (most importantly the `ShutdownAck`) for at most this long.
    pub drain_timeout: Duration,
    /// Upper bound on one connection's queued-but-unsent reply bytes;
    /// past it the connection is closed (see [`enqueue_reply`]).
    pub out_queue_cap: usize,
    /// Whether telemetry is recorded.
    pub metrics: bool,
    /// Time source for every deadline, stamp and nap in the server. Wall
    /// time by default; a [`VirtualClock`](beware_runtime::VirtualClock)
    /// handle makes hour-scale idle timeouts testable in milliseconds.
    pub clock: SharedClock,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_millis(500),
            out_queue_cap: OUT_QUEUE_CAP,
            metrics: true,
            clock: WallClock::shared(),
        }
    }
}

/// Aggregate counters served by the `Stats` request. Shared across
/// shards; relaxed ordering is fine for monotone counters.
#[derive(Debug, Default)]
struct GlobalStats {
    queries: AtomicU64,
    hits_exact: AtomicU64,
    hits_fallback: AtomicU64,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] leaves the threads running detached until a
/// `Shutdown` frame arrives.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<Registry>>,
    shards: Vec<JoinHandle<Registry>>,
}

impl ServerHandle {
    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown from in-process (equivalent to a `Shutdown`
    /// frame).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the server to stop (via [`shutdown`](Self::shutdown) or a
    /// `Shutdown` frame) and return the merged telemetry: acceptor first,
    /// then every shard in index order — the fixed merge order the
    /// determinism contract requires.
    pub fn join(mut self) -> Registry {
        let mut merged = self
            .acceptor
            .take()
            .expect("join called once")
            .join()
            .expect("acceptor thread panicked");
        for shard in self.shards.drain(..) {
            merged.merge(&shard.join().expect("shard thread panicked"));
        }
        merged
    }
}

/// Bind and start serving `oracle` on `bind` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port).
pub fn start(
    oracle: Arc<Oracle>,
    bind: impl ToSocketAddrs,
    cfg: ServerCfg,
) -> io::Result<ServerHandle> {
    let shards = cfg.shards.max(1);
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(GlobalStats::default());

    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(shards);
    let mut shard_handles = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        senders.push(tx);
        let oracle = Arc::clone(&oracle);
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let cfg = cfg.clone();
        shard_handles.push(std::thread::spawn(move || shard_loop(rx, oracle, stop, stats, &cfg)));
    }

    let stop_a = Arc::clone(&stop);
    let metrics = cfg.metrics;
    let clock = Arc::clone(&cfg.clock);
    let acceptor = std::thread::spawn(move || {
        let mut reg = if metrics { Registry::new() } else { Registry::disabled() };
        let mut next = 0usize;
        loop {
            if stop_a.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    reg.scope("serve").incr("connections");
                    // A dead shard (panicked) drops its receiver; fall
                    // through to the next one rather than losing the
                    // connection.
                    let mut conn = Some(stream);
                    for i in 0..senders.len() {
                        let tx = &senders[(next + i) % senders.len()];
                        match tx.send(conn.take().expect("connection unrouted")) {
                            Ok(()) => break,
                            Err(std::sync::mpsc::SendError(c)) => conn = Some(c),
                        }
                    }
                    next = next.wrapping_add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    clock.sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    reg.scope("serve").incr("accept_errors");
                    clock.sleep(Duration::from_millis(2));
                }
            }
        }
        reg
    });

    Ok(ServerHandle { addr, stop, acceptor: Some(acceptor), shards: shard_handles })
}

/// One connection owned by a shard.
struct Conn {
    /// Shard-local identity — the key of this connection's idle deadline
    /// on the shard's [`DeadlineWheel`].
    id: u64,
    stream: TcpStream,
    /// Reassembly buffer for partially received frames.
    buf: Vec<u8>,
    /// Bounded outbound queue. Replies are *enqueued* here and drained by
    /// the shard's poll loop with nonblocking writes — the shard never
    /// waits on a peer's receive window, so one connection that stops
    /// reading cannot head-of-line-block every other connection on the
    /// shard (the old `write_all_nb` sleep-retry loop did exactly that).
    out: Vec<u8>,
    /// Offset of the not-yet-written suffix of `out`.
    out_pos: usize,
    open: bool,
    /// Reply of record is queued (error frame, shutdown ack): stop
    /// reading, close once `out` drains.
    close_after_flush: bool,
    /// Read activity since the last poll pass; the shard loop pushes the
    /// idle deadline out (reschedules the wheel) when set.
    touched: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            open: true,
            close_after_flush: false,
            touched: false,
        }
    }

    /// Bytes queued but not yet on the wire.
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Per-shard answer cache cap; the cache is cleared wholesale when full
/// (queries repeat heavily under load, so wholesale eviction is rare and
/// keeps the structure trivial).
const CACHE_CAP: usize = 8192;

/// Default for [`ServerCfg::out_queue_cap`]: the upper bound on one
/// connection's queued-but-unsent reply bytes. A peer that keeps sending
/// queries without draining its answers is a slow reader at best and an
/// attacker at worst; past this bound the connection is closed
/// (`faults/serve/queue_overflow_closed`) instead of buffering without
/// limit.
const OUT_QUEUE_CAP: usize = 64 * 1024;

/// Per-connection, per-poll-iteration read budget. One firehose
/// connection may fill at most this many bytes before the loop moves on
/// to its shard siblings, so ingress bandwidth is shared round-robin
/// instead of drained connection-by-connection.
const READ_BUDGET: usize = 16 * 1024;

fn shard_loop(
    rx: Receiver<TcpStream>,
    oracle: Arc<Oracle>,
    stop: Arc<AtomicBool>,
    stats: Arc<GlobalStats>,
    cfg: &ServerCfg,
) -> Registry {
    let clock = Arc::clone(&cfg.clock);
    let mut reg = if cfg.metrics { Registry::new() } else { Registry::disabled() };
    let mut conns: Vec<Conn> = Vec::new();
    let mut cache: HashMap<(u32, u16, u16), Message> = HashMap::new();
    let mut scratch = [0u8; 4096];
    // Every idle deadline on this shard lives in one wheel, keyed by
    // connection id: scheduled on adoption, pushed out on read activity,
    // popped (→ eviction) when simulated-or-real time passes it.
    let mut wheel: DeadlineWheel<u64> = DeadlineWheel::new();
    let mut next_conn_id = 0u64;
    // Set when the stop flag is first observed: replies already queued
    // (the ShutdownAck above all) still get a bounded chance to drain.
    let mut drain_deadline: Option<Duration> = None;

    loop {
        // Adopt newly assigned connections.
        while let Ok(stream) = rx.try_recv() {
            reg.scope("sched").scope("serve").incr("connections_assigned");
            let id = next_conn_id;
            next_conn_id += 1;
            wheel.schedule(id, clock.now() + cfg.idle_timeout);
            conns.push(Conn::new(id, stream));
        }

        if drain_deadline.is_none() && stop.load(Ordering::SeqCst) {
            drain_deadline = Some(clock.now() + cfg.drain_timeout);
        }
        let draining = drain_deadline.is_some();

        let mut progress = false;
        for conn in &mut conns {
            if !draining {
                progress |= service_conn(
                    conn,
                    &oracle,
                    &stop,
                    &stats,
                    &mut cache,
                    &mut reg,
                    &mut scratch,
                    &clock,
                    cfg.out_queue_cap,
                );
            }
            progress |= flush_conn(conn, &mut reg, cfg.out_queue_cap);
            if conn.touched {
                conn.touched = false;
                wheel.schedule(conn.id, clock.now() + cfg.idle_timeout);
            }
        }
        // Dog food: bounded listen. Stop waiting on a silent peer —
        // whether it has gone quiet or stopped draining replies.
        while let Some((id, _)) = wheel.pop_expired(clock.now()) {
            if let Some(conn) = conns.iter_mut().find(|c| c.id == id) {
                if conn.open {
                    reg.scope("sched").scope("serve").incr("idle_closed");
                    conn.open = false;
                }
            }
        }
        conns.retain(|c| {
            if c.open {
                true
            } else {
                wheel.cancel(&c.id);
                false
            }
        });

        if let Some(deadline) = drain_deadline {
            let drained = conns.iter().all(|c| c.backlog() == 0);
            if drained || clock.now() >= deadline {
                break;
            }
        }

        if !progress {
            clock.sleep(Duration::from_micros(500));
        }
    }
    reg
}

/// Nonblocking drain of one connection's output queue. Never waits: a
/// full peer window surfaces as `faults/serve/write_backpressure` and the
/// remaining bytes stay queued for the next poll iteration.
fn flush_conn(conn: &mut Conn, reg: &mut Registry, out_queue_cap: usize) -> bool {
    let mut progress = false;
    while conn.open && conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.open = false;
            }
            Ok(n) => {
                conn.out_pos += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reg.scope("faults").scope("serve").incr("write_backpressure");
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.open = false;
            }
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_flush {
            conn.open = false;
        }
    } else if conn.out_pos >= out_queue_cap / 2 {
        // Keep the queue's memory proportional to the *unsent* bytes.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    progress
}

/// Queue a reply frame on a connection, enforcing the output bound. A
/// peer that has let [`ServerCfg::out_queue_cap`] bytes pile up is cut
/// off.
fn enqueue_reply(conn: &mut Conn, frame: &[u8], reg: &mut Registry, out_queue_cap: usize) {
    if conn.backlog() + frame.len() > out_queue_cap {
        reg.scope("faults").scope("serve").incr("queue_overflow_closed");
        conn.open = false;
        return;
    }
    conn.out.extend_from_slice(frame);
}

/// Pump one connection: read what is available (bounded by
/// [`READ_BUDGET`]), decode, and queue a reply for every complete frame.
/// Returns true when any byte moved.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    conn: &mut Conn,
    oracle: &Oracle,
    stop: &AtomicBool,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    reg: &mut Registry,
    scratch: &mut [u8],
    clock: &SharedClock,
    out_queue_cap: usize,
) -> bool {
    let mut progress = false;
    let mut budget = READ_BUDGET;
    while conn.open && !conn.close_after_flush {
        if budget == 0 {
            // Fairness: leave the rest for the next poll iteration so a
            // firehose peer cannot starve its shard siblings.
            reg.scope("sched").scope("serve").incr("read_budget_deferrals");
            break;
        }
        let want = scratch.len().min(budget);
        match conn.stream.read(&mut scratch[..want]) {
            Ok(0) => {
                conn.open = false;
                break;
            }
            Ok(n) => {
                budget -= n;
                reg.scope("serve").add("bytes_in", n as u64);
                conn.buf.extend_from_slice(&scratch[..n]);
                conn.touched = true;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.open = false;
                break;
            }
        }
    }

    let mut consumed = 0usize;
    while conn.open && !conn.close_after_flush {
        match proto::try_decode(&conn.buf[consumed..]) {
            Ok(Some((msg, used))) => {
                consumed += used;
                let t0 = clock.now();
                let (reply, close) = handle_request(&msg, oracle, stop, stats, cache, reg);
                let frame = proto::encode(&reply);
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                enqueue_reply(conn, &frame, reg, out_queue_cap);
                let ns = u64::try_from(clock.since(t0).as_nanos()).unwrap_or(u64::MAX);
                reg.scope("walltime").scope("serve").observe("request_ns", ns);
                if close {
                    conn.close_after_flush = true;
                }
                progress = true;
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is lost: queue one error report, then close
                // once it has drained.
                reg.scope("serve").incr("proto_errors");
                let code = match e {
                    ProtoError::Version(_) => ErrorCode::BadVersion,
                    _ => ErrorCode::Malformed,
                };
                let frame = proto::encode(&Message::Error { code });
                reg.scope("serve").add("bytes_out", frame.len() as u64);
                enqueue_reply(conn, &frame, reg, out_queue_cap);
                conn.close_after_flush = true;
                progress = true;
            }
        }
    }
    conn.buf.drain(..consumed);
    progress
}

/// Dispatch one decoded request. Returns the reply and whether the
/// connection should close afterwards.
fn handle_request(
    msg: &Message,
    oracle: &Oracle,
    stop: &AtomicBool,
    stats: &GlobalStats,
    cache: &mut HashMap<(u32, u16, u16), Message>,
    reg: &mut Registry,
) -> (Message, bool) {
    let mut serve = reg.scope("serve");
    serve.incr("requests");
    match *msg {
        Message::Query { addr, addr_pct_tenths, ping_pct_tenths } => {
            serve.incr("queries");
            stats.queries.fetch_add(1, Ordering::Relaxed);
            let key = (addr, addr_pct_tenths, ping_pct_tenths);
            if let Some(&cached) = cache.get(&key) {
                reg.scope("sched").scope("serve").incr("cache_hits");
                // Deterministic per-request counters must not depend on
                // whether this shard's cache happened to hold the reply.
                match cached {
                    Message::Answer { status, .. } => bump_hit(stats, reg, status),
                    Message::Error { .. } => {
                        reg.scope("serve").incr("errors_unsupported_pct");
                    }
                    _ => {}
                }
                return (cached, false);
            }
            reg.scope("sched").scope("serve").incr("cache_misses");
            let reply = match oracle.lookup(addr, addr_pct_tenths, ping_pct_tenths) {
                Ok(ans) => {
                    bump_hit(stats, reg, ans.status);
                    Message::Answer {
                        status: ans.status,
                        timeout_bits: ans.timeout_bits,
                        prefix: ans.prefix,
                        prefix_len: ans.prefix_len,
                    }
                }
                Err(LookupError::UnsupportedAddressPercentile(_))
                | Err(LookupError::UnsupportedPingPercentile(_)) => {
                    reg.scope("serve").incr("errors_unsupported_pct");
                    Message::Error { code: ErrorCode::UnsupportedPercentile }
                }
            };
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, reply);
            (reply, false)
        }
        Message::Stats => {
            serve.incr("stats_requests");
            (
                Message::StatsReply {
                    queries: stats.queries.load(Ordering::Relaxed),
                    hits_exact: stats.hits_exact.load(Ordering::Relaxed),
                    hits_fallback: stats.hits_fallback.load(Ordering::Relaxed),
                },
                false,
            )
        }
        Message::Shutdown => {
            serve.incr("shutdown_requests");
            stop.store(true, Ordering::SeqCst);
            (Message::ShutdownAck, true)
        }
        // A reply opcode arriving as a request is a confused client.
        _ => {
            serve.incr("errors_bad_request");
            (Message::Error { code: ErrorCode::UnknownOpcode }, false)
        }
    }
}

fn bump_hit(stats: &GlobalStats, reg: &mut Registry, status: Status) {
    match status {
        Status::Exact => {
            stats.hits_exact.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_exact");
        }
        Status::Fallback => {
            stats.hits_fallback.fetch_add(1, Ordering::Relaxed);
            reg.scope("serve").incr("hits_fallback");
        }
    }
}
