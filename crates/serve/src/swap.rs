//! Atomic oracle swap: the primitive behind zero-downtime snapshot
//! reloads.
//!
//! The mechanism lives in [`beware_runtime::swap`] as the generic
//! [`Slot`]/[`SlotReader`] pair; this module pins the serve-path
//! instantiation. An [`OracleHandle`] owns the current [`Oracle`] behind
//! an epoch counter; writers ([`Slot::publish`]) install a new oracle
//! and bump the epoch atomically, and each shard's [`OracleReader`]
//! resolves it with **one acquire atomic load** on the fast path. A
//! request resolves its oracle exactly once and serves the whole answer
//! from that one immutable snapshot — the *no-torn-reads* guarantee
//! (DESIGN.md §12).
//!
//! Epochs are the "snapshot version" the admin plane reports: version 1
//! is the snapshot the server started with, and every successful publish
//! increments it. The snapshot *content* identity travels separately as
//! the [`Oracle::checksum`]; the pair `(version, checksum)` is what
//! `SnapshotInfo` returns on the wire.

use crate::oracle::Oracle;
use beware_runtime::swap::{Slot, SlotReader};

/// Shared, swappable access to the serving oracle. Cheap to clone;
/// all clones publish to and read from the same slot.
pub type OracleHandle = Slot<Oracle>;

/// One shard's cached view of the [`OracleHandle`]. Not `Sync` by
/// design: each shard owns one.
pub type OracleReader = SlotReader<Oracle>;

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::snapshot::{SnapshotEntry, TimeoutSnapshot};
    use std::sync::Arc;

    fn oracle(cell: f64) -> Arc<Oracle> {
        let snap = TimeoutSnapshot {
            address_pct_tenths: vec![950],
            ping_pct_tenths: vec![950],
            fallback: vec![cell.to_bits()],
            entries: vec![SnapshotEntry {
                prefix: 0x0a000000,
                len: 8,
                cells: vec![cell.to_bits()],
            }],
        };
        Arc::new(Oracle::from_snapshot(snap).unwrap())
    }

    #[test]
    fn publish_bumps_version_and_swaps() {
        let handle = OracleHandle::new(oracle(1.0));
        let mut reader = handle.reader();
        assert_eq!(handle.version(), 1);
        assert_eq!(reader.version(), 1);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 1.0);

        assert_eq!(handle.publish(oracle(2.0)), 2);
        assert_eq!(handle.version(), 2);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 2.0);
        assert_eq!(reader.version(), 2);
    }

    #[test]
    fn reader_keeps_old_arc_alive_across_swap() {
        let handle = OracleHandle::new(oracle(1.0));
        let mut reader = handle.reader();
        let held = Arc::clone(reader.current());
        handle.publish(oracle(2.0));
        // The request that resolved before the swap still answers from
        // the old snapshot — consistent, never torn.
        assert_eq!(held.lookup(1, 950, 950).unwrap().timeout_secs(), 1.0);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 2.0);
    }

    #[test]
    fn from_impls_wrap_as_version_one() {
        let snap = oracle(3.0);
        let from_arc: OracleHandle = Arc::clone(&snap).into();
        assert_eq!(from_arc.version(), 1);
        assert_eq!(from_arc.current().checksum(), snap.checksum());
    }
}
