//! Atomic oracle swap: the primitive behind zero-downtime snapshot
//! reloads.
//!
//! An [`OracleHandle`] owns the current [`Oracle`] behind an epoch
//! counter. Writers ([`OracleHandle::publish`]) install a new oracle and
//! bump the epoch atomically; readers hold an [`OracleReader`] — one per
//! shard — whose [`current`](OracleReader::current) is **one relaxed-hot
//! atomic load** on the fast path: only when the epoch has moved since
//! the reader's last refresh does it take the (uncontended) slot lock to
//! clone the new `Arc`. A request therefore resolves its oracle exactly
//! once and serves the whole answer from that one immutable snapshot —
//! the *no-torn-reads* guarantee: every reply is consistent with either
//! the pre-swap or the post-swap snapshot, never a mixture (DESIGN.md
//! §12).
//!
//! Epochs are the "snapshot version" the admin plane reports: version 1
//! is the snapshot the server started with, and every successful publish
//! increments it. The snapshot *content* identity travels separately as
//! the [`Oracle::checksum`]; the pair `(version, checksum)` is what
//! `SnapshotInfo` returns on the wire.

use crate::oracle::Oracle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Shared {
    /// Bumped (release) after the slot is replaced; readers acquire-load
    /// it to decide whether their cached `Arc` is current.
    epoch: AtomicU64,
    /// The current oracle, tagged with the epoch it was published at so
    /// a reader that races a publish records a consistent pair.
    slot: Mutex<(u64, Arc<Oracle>)>,
}

/// Shared, swappable access to the serving oracle. Cheap to clone;
/// all clones publish to and read from the same slot.
#[derive(Debug, Clone)]
pub struct OracleHandle {
    shared: Arc<Shared>,
}

impl OracleHandle {
    /// Wrap `oracle` as version 1.
    pub fn new(oracle: Arc<Oracle>) -> OracleHandle {
        OracleHandle {
            shared: Arc::new(Shared { epoch: AtomicU64::new(1), slot: Mutex::new((1, oracle)) }),
        }
    }

    /// The current snapshot version (epoch). Starts at 1, incremented by
    /// every successful [`publish`](Self::publish).
    pub fn version(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The current oracle. Takes the slot lock — fine for admin and
    /// control paths; per-request code should hold an [`OracleReader`].
    pub fn current(&self) -> Arc<Oracle> {
        self.shared.slot.lock().expect("oracle slot poisoned").1.clone()
    }

    /// Atomically install `oracle` as the new current snapshot and
    /// return the version it was assigned. Readers observe the swap on
    /// their next [`OracleReader::current`] call; requests already
    /// resolved keep answering from the snapshot they started with.
    pub fn publish(&self, oracle: Arc<Oracle>) -> u64 {
        let mut slot = self.shared.slot.lock().expect("oracle slot poisoned");
        let version = slot.0 + 1;
        *slot = (version, oracle);
        // Publish the epoch while still holding the lock so a reader
        // that sees the new epoch always finds at-least-that-new a slot.
        self.shared.epoch.store(version, Ordering::Release);
        version
    }

    /// A per-thread reader whose fast path is a single atomic load.
    pub fn reader(&self) -> OracleReader {
        let slot = self.shared.slot.lock().expect("oracle slot poisoned");
        OracleReader { shared: Arc::clone(&self.shared), seen: slot.0, cached: slot.1.clone() }
    }
}

impl From<Arc<Oracle>> for OracleHandle {
    fn from(oracle: Arc<Oracle>) -> OracleHandle {
        OracleHandle::new(oracle)
    }
}

impl From<Oracle> for OracleHandle {
    fn from(oracle: Oracle) -> OracleHandle {
        OracleHandle::new(Arc::new(oracle))
    }
}

/// One shard's cached view of the [`OracleHandle`]. Not `Sync` by
/// design: each shard owns one.
#[derive(Debug)]
pub struct OracleReader {
    shared: Arc<Shared>,
    /// Version of `cached`.
    seen: u64,
    cached: Arc<Oracle>,
}

impl OracleReader {
    /// The current oracle — the versioned read guard a request takes.
    /// One `Acquire` load when the epoch is unchanged; a slot-lock clone
    /// only in the window right after a publish.
    pub fn current(&mut self) -> &Arc<Oracle> {
        if self.shared.epoch.load(Ordering::Acquire) != self.seen {
            let slot = self.shared.slot.lock().expect("oracle slot poisoned");
            self.seen = slot.0;
            self.cached = slot.1.clone();
        }
        &self.cached
    }

    /// Version of the oracle [`current`](Self::current) last returned.
    /// Shards compare it against their cache-stamp to invalidate
    /// version-dependent state (the reply cache) after a swap.
    pub fn version(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::snapshot::{SnapshotEntry, TimeoutSnapshot};

    fn oracle(cell: f64) -> Arc<Oracle> {
        let snap = TimeoutSnapshot {
            address_pct_tenths: vec![950],
            ping_pct_tenths: vec![950],
            fallback: vec![cell.to_bits()],
            entries: vec![SnapshotEntry {
                prefix: 0x0a000000,
                len: 8,
                cells: vec![cell.to_bits()],
            }],
        };
        Arc::new(Oracle::from_snapshot(snap).unwrap())
    }

    #[test]
    fn publish_bumps_version_and_swaps() {
        let handle = OracleHandle::new(oracle(1.0));
        let mut reader = handle.reader();
        assert_eq!(handle.version(), 1);
        assert_eq!(reader.version(), 1);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 1.0);

        assert_eq!(handle.publish(oracle(2.0)), 2);
        assert_eq!(handle.version(), 2);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 2.0);
        assert_eq!(reader.version(), 2);
    }

    #[test]
    fn reader_keeps_old_arc_alive_across_swap() {
        let handle = OracleHandle::new(oracle(1.0));
        let mut reader = handle.reader();
        let held = Arc::clone(reader.current());
        handle.publish(oracle(2.0));
        // The request that resolved before the swap still answers from
        // the old snapshot — consistent, never torn.
        assert_eq!(held.lookup(1, 950, 950).unwrap().timeout_secs(), 1.0);
        assert_eq!(reader.current().lookup(1, 950, 950).unwrap().timeout_secs(), 2.0);
    }

    #[test]
    fn concurrent_readers_always_see_old_or_new() {
        let handle = OracleHandle::new(oracle(1.0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut reader = handle.reader();
                let mut last_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let o = reader.current();
                    let secs = o.lookup(1, 950, 950).unwrap().timeout_secs();
                    assert!(secs == 1.0 || secs == 2.0, "torn value {secs}");
                    let v = reader.version();
                    assert!(v >= last_version, "version moved backwards: {last_version} -> {v}");
                    // Version and content must agree: version 1 is the
                    // 1.0 oracle, anything later the 2.0 one.
                    assert_eq!(secs, if v == 1 { 1.0 } else { 2.0 });
                    last_version = v;
                }
            }));
        }
        for _ in 0..100 {
            handle.publish(oracle(2.0));
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.version(), 101);
    }
}
