//! Property tests for the wire protocol's incremental decoder: however a
//! sequence of frames is fragmented — byte at a time, split at every
//! boundary, or at arbitrary random cut points — feeding the fragments
//! through an accumulation buffer must decode exactly the same messages
//! as decoding each whole frame.

use beware_serve::proto::{self, ErrorCode, Message, Status};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), 1..=1000u16, 1..=1000u16).prop_map(
            |(addr, addr_pct_tenths, ping_pct_tenths)| Message::Query {
                addr,
                addr_pct_tenths,
                ping_pct_tenths
            }
        ),
        Just(Message::Stats),
        Just(Message::Shutdown),
        (any::<u64>(), any::<u32>(), 0..=32u8, any::<bool>()).prop_map(
            |(timeout_bits, prefix, prefix_len, exact)| Message::Answer {
                status: if exact { Status::Exact } else { Status::Fallback },
                timeout_bits,
                prefix,
                prefix_len,
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(queries, hits_exact, hits_fallback)| Message::StatsReply {
                queries,
                hits_exact,
                hits_fallback
            }
        ),
        Just(Message::ShutdownAck),
        Just(Message::Error { code: ErrorCode::UnsupportedPercentile }),
        Just(Message::Error { code: ErrorCode::Malformed }),
    ]
}

/// Feed `stream` into an accumulation buffer in chunks whose sizes are
/// chosen by `cuts`, draining complete frames as they appear — exactly
/// the server's reassembly loop.
fn decode_fragmented(stream: &[u8], chunk_sizes: &[usize]) -> Vec<Message> {
    let mut decoded = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut fed = 0usize;
    let mut cut_idx = 0usize;
    while fed < stream.len() {
        let step = if chunk_sizes.is_empty() {
            1
        } else {
            chunk_sizes[cut_idx % chunk_sizes.len()].clamp(1, stream.len() - fed)
        };
        cut_idx += 1;
        buf.extend_from_slice(&stream[fed..fed + step]);
        fed += step;
        let mut consumed = 0usize;
        while let Some((msg, used)) = proto::try_decode(&buf[consumed..]).expect("valid stream") {
            decoded.push(msg);
            consumed += used;
        }
        buf.drain(..consumed);
    }
    assert!(buf.is_empty(), "whole frames must leave no residue");
    decoded
}

proptest! {
    #[test]
    fn random_fragmentation_decodes_like_whole_frames(
        msgs in proptest::collection::vec(arb_message(), 1..10),
        chunk_sizes in proptest::collection::vec(1usize..17, 1..12),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&proto::encode(m));
        }
        let got = decode_fragmented(&stream, &chunk_sizes);
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn byte_at_a_time_decodes_like_whole_frames(
        msgs in proptest::collection::vec(arb_message(), 1..6),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&proto::encode(m));
        }
        let got = decode_fragmented(&stream, &[]);
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn split_at_every_boundary_decodes_like_whole_frame(msg in arb_message()) {
        let frame = proto::encode(&msg);
        for cut in 1..frame.len() {
            let got = decode_fragmented(&frame, &[cut, frame.len()]);
            prop_assert_eq!(&got, &vec![msg], "split at {}", cut);
        }
    }
}
