//! Hand-rolled JSON render/parse for the telemetry export.
//!
//! The workspace is hermetic (no serde), so the registry renders its own
//! JSON and reads it back with a minimal recursive-descent parser that
//! covers exactly the emitted subset: objects, arrays, strings without
//! escapes beyond `\"`/`\\`, and unsigned integers.

use crate::{Histogram, Metric, Registry, NONDETERMINISTIC_FAMILIES};

/// Render the deterministic metrics (everything outside the
/// `walltime/` and `sched/` families) as a stable, pretty-printed JSON
/// document.
pub fn render(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"metrics\": [");
    let mut first = true;
    for (name, metric) in reg.iter() {
        if NONDETERMINISTIC_FAMILIES.iter().any(|f| name.starts_with(f)) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        render_metric(&mut out, name, metric);
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_metric(out: &mut String, name: &str, metric: &Metric) {
    out.push_str(&format!("{{\"name\": {}, ", quote(name)));
    match metric {
        Metric::Counter(v) => {
            out.push_str(&format!("\"kind\": \"counter\", \"value\": {v}}}"));
        }
        Metric::Gauge(v) => {
            out.push_str(&format!("\"kind\": \"gauge\", \"value\": {v}}}"));
        }
        Metric::Histogram(h) => {
            out.push_str(&format!(
                "\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            ));
            let mut first = true;
            for (&b, &n) in &h.buckets {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("[{b}, {n}]"));
            }
            out.push_str("]}");
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a document produced by [`render`] back into a registry.
pub fn parse(text: &str) -> Result<Registry, String> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.document()?;
    let metrics = value
        .field("metrics")
        .ok_or("missing `metrics` array")?
        .as_array()
        .ok_or("`metrics` is not an array")?;
    let mut reg = Registry::new();
    for m in metrics {
        let name =
            m.field("name").and_then(Json::as_str).ok_or("metric missing `name`")?.to_string();
        let kind = m.field("kind").and_then(Json::as_str).ok_or("metric missing `kind`")?;
        let metric = match kind {
            "counter" => Metric::Counter(num_field(m, "value")?),
            "gauge" => Metric::Gauge(num_field(m, "value")?),
            "histogram" => {
                let mut h = Histogram {
                    count: num_field(m, "count")?,
                    sum: num_field(m, "sum")?,
                    min: num_field(m, "min")?,
                    max: num_field(m, "max")?,
                    buckets: Default::default(),
                };
                let buckets = m
                    .field("buckets")
                    .and_then(Json::as_array)
                    .ok_or("histogram missing `buckets`")?;
                for pair in buckets {
                    let pair = pair.as_array().ok_or("bucket entry is not a pair")?;
                    if pair.len() != 2 {
                        return Err("bucket entry is not a pair".into());
                    }
                    let b = pair[0].as_num().ok_or("bucket index not a number")?;
                    let n = pair[1].as_num().ok_or("bucket count not a number")?;
                    h.buckets.insert(u32::try_from(b).map_err(|e| e.to_string())?, n);
                }
                Metric::Histogram(h)
            }
            other => return Err(format!("unknown metric kind `{other}`")),
        };
        reg.metrics.insert(name, metric);
    }
    Ok(reg)
}

fn num_field(m: &Json, name: &str) -> Result<u64, String> {
    m.field(name).and_then(Json::as_num).ok_or_else(|| format!("metric missing numeric `{name}`"))
}

enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!("expected `{}` at byte {}, got {got:?}", b as char, self.pos)),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            got => Err(format!("unexpected {got:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                got => return Err(format!("expected `,` or `}}`, got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                got => return Err(format!("expected `,` or `]`, got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    // Metric names are ASCII by convention, but pass
                    // non-ASCII bytes through rather than corrupting them.
                    let s = &self.bytes[self.pos..];
                    let ch_len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = s.get(..ch_len).ok_or("truncated string")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>().map(Json::Num).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        let mut s = reg.scope("netsim");
        s.add("probes", 42);
        s.gauge_max("queue_peak", 17);
        s.observe("rtt_us", 0);
        s.observe("rtt_us", 900);
        s.observe("rtt_us", 70_000);
        reg.scope("bench").record_wall_secs("build", 0.25);
        reg
    }

    #[test]
    fn round_trip_preserves_deterministic_metrics() {
        let reg = sample();
        let json = reg.to_json();
        let back = Registry::from_json(&json).unwrap();
        // walltime/ was excluded on render, so compare against a copy
        // without it.
        let mut expect = Registry::new();
        for (name, m) in reg.iter() {
            if !NONDETERMINISTIC_FAMILIES.iter().any(|f| name.starts_with(f)) {
                expect.metrics.insert(name.to_string(), m.clone());
            }
        }
        assert_eq!(back.metrics, expect.metrics);
        // And the re-render is byte-identical: schema is stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn render_shape_is_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"schema\": 1,\n  \"metrics\": ["), "{json}");
        assert!(json.contains("\"kind\": \"counter\", \"value\": 42"), "{json}");
        assert!(json.contains("\"kind\": \"gauge\", \"value\": 17"), "{json}");
        assert!(json.contains("\"buckets\": [[0, 1], [10, 1], [17, 1]]"), "{json}");
        assert!(json.ends_with("]\n}\n"), "{json}");
    }

    #[test]
    fn empty_registry_renders_and_parses() {
        let json = Registry::new().to_json();
        assert_eq!(json, "{\n  \"schema\": 1,\n  \"metrics\": []\n}\n");
        assert!(Registry::from_json(&json).unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Registry::from_json("").is_err());
        assert!(Registry::from_json("{\"schema\": 1}").is_err());
        assert!(Registry::from_json("{\"metrics\": [{\"name\": \"x\"}]}").is_err());
        assert!(Registry::from_json("{\"metrics\": []} trailing").is_err());
    }

    #[test]
    fn names_with_quotes_round_trip() {
        let mut reg = Registry::new();
        reg.scope("odd\"name\\x").add("c", 1);
        let back = Registry::from_json(&reg.to_json()).unwrap();
        assert_eq!(back.counter("odd\"name\\x/c"), Some(1));
    }
}
