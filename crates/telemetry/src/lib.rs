//! # beware-telemetry
//!
//! Hierarchical, deterministic telemetry for the beware stack: counters,
//! max-gauges and log-bucketed histograms behind a [`Registry`]/[`Scope`]
//! API, plus wall-clock span timers that stay out of the deterministic
//! export.
//!
//! Design constraints (see DESIGN.md §7 for the full contract):
//!
//! * **Deterministic.** Every metric except the `walltime/` family is a
//!   pure function of the simulation inputs. [`Registry::to_json`] skips
//!   `walltime/`, so the JSON export is byte-identical across runs and
//!   thread counts; [`Registry::merge`] is commutative over `u64`
//!   arithmetic but callers still merge in fixed task order so even a
//!   future non-commutative metric kind would stay reproducible.
//! * **Near-zero cost when disabled.** A registry built with
//!   [`Registry::disabled`] turns every recording call into a branch on
//!   one bool; no strings are formatted, no map entries touched. Hot
//!   loops should still aggregate into plain struct counters and flush
//!   once at end of run — the per-metric `String` lookup is meant for
//!   end-of-run recording, not per-packet paths.
//! * **Hierarchical names.** Metric names are `/`-joined paths
//!   (`probe/survey/matched`); a [`Scope`] is a registry view with a
//!   fixed prefix, nestable via [`Scope::scope`].
//! * **No dependencies.** The workspace is hermetic; the JSON export is
//!   hand-rendered and read back by a minimal parser covering exactly the
//!   emitted subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;

use beware_runtime::clock::SharedClock;
use std::collections::BTreeMap;

/// Family prefix for wall-clock measurements. Metrics under this prefix
/// are nondeterministic by nature and are excluded from
/// [`Registry::to_json`]; they still merge and render as text.
pub const WALLTIME_FAMILY: &str = "walltime/";

/// Family prefix for scheduling-dependent metrics: values that depend on
/// how work happened to be distributed (which shard a connection landed
/// on, per-shard cache hits, idle-timeout closures) rather than on the
/// inputs. Like [`WALLTIME_FAMILY`], the family is excluded from
/// [`Registry::to_json`] so the deterministic export stays byte-identical
/// across thread and shard counts; it still merges and renders as text.
pub const SCHED_FAMILY: &str = "sched/";

/// Family prefix for fault counters: faults injected by the chaos layer
/// (`beware-faultsim`) and faults *handled* by the serving stack (write
/// backpressure, bounded-queue overflows, poisoned client connections).
/// Whether and when a fault fires depends on wall-clock races between
/// peers, so the family is excluded from [`Registry::to_json`] like
/// [`WALLTIME_FAMILY`] and [`SCHED_FAMILY`]; it still merges and renders
/// as text.
pub const FAULTS_FAMILY: &str = "faults/";

/// The family prefixes excluded from the deterministic JSON export.
pub const NONDETERMINISTIC_FAMILIES: [&str; 3] = [WALLTIME_FAMILY, SCHED_FAMILY, FAULTS_FAMILY];

/// Log-bucketed histogram over `u64` values (latencies in µs, sizes in
/// bytes — the unit is the caller's naming convention).
///
/// Bucket `b` holds values `v` with `bucket_of(v) == b`: bucket 0 holds
/// only `v == 0`, bucket `b ≥ 1` holds `2^(b-1) ≤ v < 2^b`. Buckets are
/// sparse; only observed buckets are stored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Bucket index → observation count.
    pub buckets: BTreeMap<u32, u64>,
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1` — pure
/// integer arithmetic, deterministic on every platform.
pub fn bucket_of(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Inclusive upper bound of a bucket (`2^b - 1`), used for approximate
/// quantiles in the text report.
fn bucket_upper(b: u32) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// Approximate quantile (`q` in 0..=100): the inclusive upper bound of
    /// the bucket where the cumulative count crosses `q`% — an upper
    /// bound on the true quantile, exact to within one power of two.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric. The kind is fixed by the first recording under a name;
/// recording a different kind under the same name is a caller bug and
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic count; merges by sum.
    Counter(u64),
    /// High-water mark; merges by max.
    Gauge(u64),
    /// Log-bucketed distribution; merges bucket-wise.
    Histogram(Histogram),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn merge(&mut self, other: &Metric, name: &str) {
        match (self, other) {
            (Metric::Counter(a), Metric::Counter(b)) => *a += b,
            (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
            (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
            (a, b) => panic!(
                "telemetry kind mismatch for `{name}`: {} vs {}",
                a.kind_name(),
                b.kind_name()
            ),
        }
    }
}

/// The metric store. Create one per independent unit of work (a task in
/// a parallel fan-out), record through [`Scope`]s, then [`merge`] the
/// per-task registries **in task order** into one.
///
/// [`merge`]: Registry::merge
#[derive(Debug, Clone, Default)]
pub struct Registry {
    enabled: bool,
    metrics: BTreeMap<String, Metric>,
    /// Time source for [`Scope::time`]. `None` means real time
    /// ([`std::time::Instant`]); tests inject a
    /// `beware_runtime::VirtualClock` to make the `walltime/` family
    /// deterministic. The clock never affects the JSON export either way
    /// — `walltime/` stays excluded (see [`WALLTIME_FAMILY`]).
    clock: Option<SharedClock>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry { enabled: true, metrics: BTreeMap::new(), clock: None }
    }

    /// A disabled registry: every recording call is a no-op costing one
    /// branch; merge/export see an empty registry.
    pub fn disabled() -> Self {
        Registry { enabled: false, metrics: BTreeMap::new(), clock: None }
    }

    /// An enabled registry whose [`Scope::time`] spans are measured on
    /// `clock` instead of the wall — the seam that makes the `walltime/`
    /// family testable under a virtual clock.
    pub fn with_clock(clock: SharedClock) -> Self {
        Registry { enabled: true, metrics: BTreeMap::new(), clock: Some(clock) }
    }

    /// Install (or replace) the span-timer clock on an existing registry.
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = Some(clock);
    }

    /// Whether recording is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// A recording view prefixed with `name` (e.g. `"netsim"`).
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        Scope { reg: self, prefix: name.to_string() }
    }

    /// Look up a metric by full name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Counter value by full name (0 when absent; `None` when the name
    /// holds a different kind).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            None => Some(0),
            Some(Metric::Counter(v)) => Some(*v),
            Some(_) => None,
        }
    }

    /// Iterate `(name, metric)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn add(&mut self, name: String, delta: u64) {
        match self.metrics.entry(name) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Metric::Counter(delta));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                Metric::Counter(v) => *v += delta,
                m => {
                    let kind = m.kind_name();
                    panic!("telemetry: `{}` is a {kind}, not a counter", e.key())
                }
            },
        }
    }

    fn gauge_max(&mut self, name: String, value: u64) {
        match self.metrics.entry(name) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Metric::Gauge(value));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                Metric::Gauge(v) => *v = (*v).max(value),
                m => {
                    let kind = m.kind_name();
                    panic!("telemetry: `{}` is a {kind}, not a gauge", e.key())
                }
            },
        }
    }

    fn observe(&mut self, name: String, value: u64) {
        match self.metrics.entry(name) {
            std::collections::btree_map::Entry::Vacant(e) => {
                let mut h = Histogram::default();
                h.observe(value);
                e.insert(Metric::Histogram(h));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                Metric::Histogram(h) => h.observe(value),
                m => {
                    let kind = m.kind_name();
                    panic!("telemetry: `{}` is a {kind}, not a histogram", e.key())
                }
            },
        }
    }

    /// Merge `other` into `self`: counters sum, gauges take the max,
    /// histograms merge bucket-wise. Call in **fixed task order** when
    /// combining parallel work so the result never depends on scheduling.
    /// A disabled `self` ignores the merge.
    pub fn merge(&mut self, other: &Registry) {
        if !self.enabled {
            return;
        }
        for (name, metric) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(m) => m.merge(metric, name),
                None => {
                    self.metrics.insert(name.clone(), metric.clone());
                }
            }
        }
    }

    /// Render the deterministic metrics as JSON (schema in DESIGN.md §7).
    /// The [`NONDETERMINISTIC_FAMILIES`] (`walltime/`, `sched/`,
    /// `faults/`) are excluded — this export is what the byte-identity
    /// contract covers.
    pub fn to_json(&self) -> String {
        json::render(self)
    }

    /// Parse a JSON document produced by [`Registry::to_json`] back into
    /// an (enabled) registry.
    pub fn from_json(text: &str) -> Result<Registry, String> {
        json::parse(text)
    }

    /// Render a human-readable text report, including `walltime/`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry report ({} metrics)\n", self.metrics.len()));
        let width = self.metrics.keys().map(|k| k.len()).max().unwrap_or(0).min(48);
        let mut family = "";
        for (name, metric) in &self.metrics {
            let fam = name.split('/').next().unwrap_or("");
            if fam != family {
                family = fam;
                out.push('\n');
            }
            match metric {
                Metric::Counter(v) => {
                    out.push_str(&format!("  {name:<width$}  {v}\n"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("  {name:<width$}  {v} (peak)\n"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "  {name:<width$}  count={} min={} max={} mean={:.1} p50≤{} p99≤{}\n",
                        h.count,
                        h.min,
                        h.max,
                        h.mean(),
                        h.quantile_upper(50.0).unwrap_or(0),
                        h.quantile_upper(99.0).unwrap_or(0),
                    ));
                }
            }
        }
        out
    }
}

/// A prefixed recording view of a [`Registry`]. Metric names passed to
/// the recording methods are joined to the scope's prefix with `/`.
#[derive(Debug)]
pub struct Scope<'a> {
    reg: &'a mut Registry,
    prefix: String,
}

impl Scope<'_> {
    /// Whether recording is live (callers can skip expensive preparation
    /// of values when not).
    pub fn enabled(&self) -> bool {
        self.reg.enabled
    }

    /// A nested scope: `self.prefix + "/" + name`.
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        let prefix = if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.prefix)
        };
        Scope { reg: self.reg, prefix }
    }

    fn full(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.prefix)
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.reg.enabled {
            return;
        }
        self.reg.add(self.full(name), delta);
    }

    /// Increment the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raise the max-gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        if !self.reg.enabled {
            return;
        }
        self.reg.gauge_max(self.full(name), value);
    }

    /// Record `value` into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.reg.enabled {
            return;
        }
        self.reg.observe(self.full(name), value);
    }

    /// Time `f` on the registry's clock (the wall by default, a
    /// `beware_runtime::VirtualClock` when one was injected via
    /// [`Registry::with_clock`]) and add the elapsed nanoseconds to the
    /// counter `walltime/<prefix>/<name>_ns`. Wall-clock metrics live in
    /// their own top-level family precisely so the deterministic JSON
    /// export can exclude them (see [`WALLTIME_FAMILY`]).
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.reg.enabled {
            return f();
        }
        let (out, elapsed) = match self.reg.clock.clone() {
            Some(clock) => {
                let t0 = clock.now();
                let out = f();
                (out, clock.since(t0))
            }
            None => {
                let t0 = std::time::Instant::now();
                let out = f();
                (out, t0.elapsed())
            }
        };
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let full = format!("{WALLTIME_FAMILY}{}_ns", self.full(name));
        self.reg.add(full, ns);
        out
    }

    /// Add externally measured wall-clock seconds under
    /// `walltime/<prefix>/<name>_ns`.
    pub fn record_wall_secs(&mut self, name: &str, secs: f64) {
        if !self.reg.enabled {
            return;
        }
        let ns = (secs.max(0.0) * 1e9).round() as u64;
        let full = format!("{WALLTIME_FAMILY}{}_ns", self.full(name));
        self.reg.add(full, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_and_gauges_record() {
        let mut reg = Registry::new();
        let mut s = reg.scope("netsim");
        s.add("probes", 10);
        s.incr("probes");
        s.gauge_max("queue_peak", 5);
        s.gauge_max("queue_peak", 3);
        assert_eq!(reg.counter("netsim/probes"), Some(11));
        assert_eq!(reg.get("netsim/queue_peak"), Some(&Metric::Gauge(5)));
    }

    #[test]
    fn nested_scopes_join_with_slash() {
        let mut reg = Registry::new();
        let mut probe = reg.scope("probe");
        let mut survey = probe.scope("survey");
        survey.add("matched", 7);
        assert_eq!(reg.counter("probe/survey/matched"), Some(7));
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1106);
        // p50 falls in the bucket of 3 → upper bound 3.
        assert_eq!(h.quantile_upper(50.0), Some(3));
        // p99 lands in the last bucket, clamped to the true max.
        assert_eq!(h.quantile_upper(99.0), Some(1000));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = Registry::disabled();
        let mut s = reg.scope("x");
        s.add("a", 1);
        s.gauge_max("b", 2);
        s.observe("c", 3);
        let r = s.time("t", || 42);
        assert_eq!(r, 42);
        assert!(reg.is_empty());
        assert!(!reg.enabled());
    }

    #[test]
    fn merge_sums_maxes_and_buckets() {
        let build = |n: u64| {
            let mut reg = Registry::new();
            let mut s = reg.scope("m");
            s.add("count", n);
            s.gauge_max("peak", n * 2);
            s.observe("lat", n);
            reg
        };
        let mut a = build(3);
        a.merge(&build(5));
        assert_eq!(a.counter("m/count"), Some(8));
        assert_eq!(a.get("m/peak"), Some(&Metric::Gauge(10)));
        match a.get("m/lat") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert_eq!((h.min, h.max), (3, 5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_order_does_not_change_result() {
        let build = |vals: &[u64]| {
            let mut reg = Registry::new();
            let mut s = reg.scope("m");
            for &v in vals {
                s.add("c", v);
                s.observe("h", v);
                s.gauge_max("g", v);
            }
            reg
        };
        let (a, b) = (build(&[1, 2, 3]), build(&[10, 20]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn merge_kind_mismatch_panics() {
        let mut a = Registry::new();
        a.scope("m").add("x", 1);
        let mut b = Registry::new();
        b.scope("m").gauge_max("x", 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_confusion_panics() {
        let mut reg = Registry::new();
        reg.scope("m").gauge_max("x", 1);
        reg.scope("m").add("x", 1);
    }

    #[test]
    fn walltime_excluded_from_json_but_rendered() {
        let mut reg = Registry::new();
        let mut s = reg.scope("bench");
        s.add("steps", 1);
        s.record_wall_secs("build", 1.5);
        let json = reg.to_json();
        assert!(json.contains("bench/steps"));
        assert!(!json.contains("walltime"), "{json}");
        let text = reg.render_text();
        assert!(text.contains("walltime/bench/build_ns"), "{text}");
    }

    #[test]
    fn sched_family_excluded_from_json_but_rendered() {
        let mut reg = Registry::new();
        let mut s = reg.scope("serve");
        s.add("queries", 4);
        reg.scope("sched").scope("serve").add("cache_hits", 3);
        let json = reg.to_json();
        assert!(json.contains("serve/queries"), "{json}");
        assert!(!json.contains("sched/"), "{json}");
        let text = reg.render_text();
        assert!(text.contains("sched/serve/cache_hits"), "{text}");
    }

    #[test]
    fn faults_family_excluded_from_json_but_rendered() {
        let mut reg = Registry::new();
        reg.scope("serve").add("queries", 4);
        reg.scope("faults").scope("injected").add("corruptions", 2);
        reg.scope("faults").scope("serve").add("queue_overflow_closed", 1);
        let json = reg.to_json();
        assert!(json.contains("serve/queries"), "{json}");
        assert!(!json.contains("faults/"), "{json}");
        let text = reg.render_text();
        assert!(text.contains("faults/injected/corruptions"), "{text}");
    }

    #[test]
    fn span_timer_records_elapsed() {
        let mut reg = Registry::new();
        let out = reg.scope("bench").time("work", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let ns = reg.counter("walltime/bench/work_ns").unwrap();
        assert!(ns >= 1_000_000, "elapsed {ns} ns");
    }

    #[test]
    fn span_timer_on_a_virtual_clock_is_deterministic() {
        use beware_runtime::VirtualClock;
        // The walltime/ family becomes a pure function of the clock
        // schedule: 145 simulated seconds elapse with no real wait.
        let vc = VirtualClock::new();
        let mut reg = Registry::with_clock(vc.handle());
        let out = reg.scope("serve").time("stall", || {
            vc.advance(std::time::Duration::from_secs(145));
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(reg.counter("walltime/serve/stall_ns"), Some(145_000_000_000));
        // Export exclusion is clock-independent: walltime/ stays out of
        // the JSON either way.
        reg.scope("serve").incr("queries");
        let json = reg.to_json();
        assert!(json.contains("serve/queries"), "{json}");
        assert!(!json.contains("walltime"), "{json}");
    }

    #[test]
    fn text_report_groups_and_labels() {
        let mut reg = Registry::new();
        reg.scope("netsim").add("probes", 3);
        reg.scope("probe").scope("zmap").observe("rtt_us", 500);
        reg.scope("netsim").gauge_max("queue_peak", 9);
        let text = reg.render_text();
        assert!(text.contains("telemetry report (3 metrics)"), "{text}");
        assert!(text.contains("netsim/probes"), "{text}");
        assert!(text.contains("(peak)"), "{text}");
        assert!(text.contains("count=1"), "{text}");
    }
}
