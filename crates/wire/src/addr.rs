//! IPv4 address-block utilities.
//!
//! The ISI survey probes whole /24 blocks, and the paper's broadcast-response
//! analysis (Figures 2 and 3) classifies the *last octet* of a probed address
//! by whether its trailing bits are a run of all-ones or all-zeros — the
//! shapes subnet broadcast (and network) addresses take for prefixes of any
//! length ≥ /23. This module centralizes that arithmetic.
//!
//! Addresses are carried as host-order `u32` for cheap keying inside the
//! simulator; [`fmt_addr`] renders dotted quads for reports.

use std::net::Ipv4Addr;

/// Render a host-order `u32` address as a dotted quad.
pub fn fmt_addr(addr: u32) -> String {
    Ipv4Addr::from(addr).to_string()
}

/// Parse a dotted quad into a host-order `u32`.
pub fn parse_addr(s: &str) -> Option<u32> {
    s.parse::<Ipv4Addr>().ok().map(u32::from)
}

/// A /24 address block, identified by its upper 24 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Block24(u32);

impl Block24 {
    /// The block containing `addr`.
    pub fn containing(addr: u32) -> Self {
        Block24(addr >> 8)
    }

    /// Construct from the upper-24-bit prefix value (i.e. `addr >> 8`).
    pub fn from_prefix(prefix: u32) -> Self {
        debug_assert!(prefix <= 0x00ff_ffff);
        Block24(prefix & 0x00ff_ffff)
    }

    /// The upper-24-bit prefix value.
    pub fn prefix(self) -> u32 {
        self.0
    }

    /// First address in the block (last octet 0).
    pub fn base(self) -> u32 {
        self.0 << 8
    }

    /// The address with the given last octet.
    pub fn addr(self, last_octet: u8) -> u32 {
        self.base() | u32::from(last_octet)
    }

    /// True if `addr` falls inside this block.
    pub fn contains(self, addr: u32) -> bool {
        addr >> 8 == self.0
    }

    /// Iterate all 256 addresses of the block in ascending order.
    pub fn addrs(self) -> impl Iterator<Item = u32> {
        let base = self.base();
        (0u32..256).map(move |o| base | o)
    }

    /// Render as `a.b.c.0/24`.
    pub fn to_cidr(self) -> String {
        format!("{}/24", fmt_addr(self.base()))
    }
}

/// Last octet of an address (the analysis in Figures 2 and 3 is keyed on it).
pub fn last_octet(addr: u32) -> u8 {
    (addr & 0xff) as u8
}

/// Classification of a last octet by its trailing bit run.
///
/// Subnet broadcast addresses have host-part bits all ones, network
/// addresses all zeros; for any subnet of size ≥ 4 inside a /24 the last
/// octet therefore ends in a run of ≥ 2 equal bits. Octets ending in binary
/// `01` or `10` cannot be broadcast/network addresses of any such subnet —
/// the paper uses exactly this split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LastOctetClass {
    /// Trailing run of `n ≥ 2` one-bits (e.g. 255, 127, 3). Candidate
    /// subnet *broadcast* address.
    TrailingOnes(u8),
    /// Trailing run of `n ≥ 2` zero-bits (e.g. 0, 128, 4). Candidate
    /// subnet *network* address (often also answers directed broadcast).
    TrailingZeros(u8),
    /// Ends in binary `01` or `10`: cannot be a broadcast/network address
    /// of a subnet with ≥ 4 addresses.
    Interior,
}

impl LastOctetClass {
    /// Classify a last octet.
    pub fn of(octet: u8) -> Self {
        let ones = octet.trailing_ones() as u8;
        let zeros = octet.trailing_zeros().min(8) as u8;
        if ones >= 2 {
            LastOctetClass::TrailingOnes(ones)
        } else if zeros >= 2 {
            LastOctetClass::TrailingZeros(zeros)
        } else {
            LastOctetClass::Interior
        }
    }

    /// True for the broadcast-candidate classes (`TrailingOnes` or
    /// `TrailingZeros`), i.e. the octets that spike in Figures 2 and 3.
    pub fn is_broadcast_like(self) -> bool {
        !matches!(self, LastOctetClass::Interior)
    }
}

/// True if `addr` is the broadcast address of the size-`2^host_bits` subnet
/// aligned at its position (host bits all ones).
pub fn is_subnet_broadcast(addr: u32, host_bits: u32) -> bool {
    debug_assert!(host_bits <= 32);
    if host_bits == 0 {
        return false;
    }
    let mask = if host_bits == 32 { u32::MAX } else { (1u32 << host_bits) - 1 };
    addr & mask == mask
}

/// True if `addr` is the network address of the size-`2^host_bits` subnet
/// aligned at its position (host bits all zeros).
pub fn is_subnet_network(addr: u32, host_bits: u32) -> bool {
    debug_assert!(host_bits <= 32);
    if host_bits == 0 {
        return false;
    }
    let mask = if host_bits == 32 { u32::MAX } else { (1u32 << host_bits) - 1 };
    addr & mask == 0
}

/// Iterator over consecutive /24 blocks starting at a base prefix.
///
/// Used by workload builders that allocate contiguous block ranges to a
/// network. Saturates at the end of the address space.
#[derive(Debug, Clone)]
pub struct BlockIter {
    next: u32,
    remaining: u32,
}

impl BlockIter {
    /// `count` blocks starting with the block containing `base_addr`.
    pub fn new(base_addr: u32, count: u32) -> Self {
        BlockIter { next: base_addr >> 8, remaining: count }
    }
}

impl Iterator for BlockIter {
    type Item = Block24;

    fn next(&mut self) -> Option<Block24> {
        if self.remaining == 0 || self.next > 0x00ff_ffff {
            return None;
        }
        let b = Block24::from_prefix(self.next);
        self.next += 1;
        self.remaining -= 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_arithmetic_roundtrips() {
        let addr = parse_addr("211.4.10.254").unwrap();
        let b = Block24::containing(addr);
        assert_eq!(b.base(), parse_addr("211.4.10.0").unwrap());
        assert_eq!(b.addr(255), parse_addr("211.4.10.255").unwrap());
        assert!(b.contains(addr));
        assert!(!b.contains(addr + 256));
        assert_eq!(b.to_cidr(), "211.4.10.0/24");
    }

    #[test]
    fn block_iterates_256_ascending() {
        let b = Block24::containing(parse_addr("10.0.0.0").unwrap());
        let addrs: Vec<u32> = b.addrs().collect();
        assert_eq!(addrs.len(), 256);
        assert_eq!(addrs[0], b.base());
        assert_eq!(addrs[255], b.addr(255));
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn classify_paper_examples() {
        // The paper calls out 255, 0, 127, 128 as the spiking octets.
        assert_eq!(LastOctetClass::of(255), LastOctetClass::TrailingOnes(8));
        assert_eq!(LastOctetClass::of(0), LastOctetClass::TrailingZeros(8));
        assert_eq!(LastOctetClass::of(127), LastOctetClass::TrailingOnes(7));
        assert_eq!(LastOctetClass::of(128), LastOctetClass::TrailingZeros(7));
        // ...and says octets ending in binary 01/10 have very few.
        assert_eq!(LastOctetClass::of(254), LastOctetClass::Interior); // ...11111110
        assert_eq!(LastOctetClass::of(1), LastOctetClass::Interior); // ...00000001
        assert_eq!(LastOctetClass::of(2), LastOctetClass::Interior); // ...00000010
        assert!(LastOctetClass::of(3).is_broadcast_like()); // ...011
        assert!(LastOctetClass::of(4).is_broadcast_like()); // ...100
    }

    #[test]
    fn every_octet_classified_consistently() {
        for o in 0u16..=255 {
            let o = o as u8;
            match LastOctetClass::of(o) {
                LastOctetClass::TrailingOnes(n) => {
                    assert!(n >= 2);
                    assert_eq!(o.trailing_ones(), u32::from(n));
                }
                LastOctetClass::TrailingZeros(n) => {
                    assert!(n >= 2);
                    assert_eq!(o.trailing_zeros().min(8), u32::from(n));
                }
                LastOctetClass::Interior => {
                    assert!(o.trailing_ones() < 2 && o.trailing_zeros() < 2);
                }
            }
        }
    }

    #[test]
    fn subnet_broadcast_and_network_detection() {
        let bcast = parse_addr("192.168.1.255").unwrap();
        assert!(is_subnet_broadcast(bcast, 8));
        assert!(is_subnet_broadcast(bcast, 2));
        assert!(!is_subnet_broadcast(bcast - 1, 8));
        let net = parse_addr("192.168.1.0").unwrap();
        assert!(is_subnet_network(net, 8));
        assert!(!is_subnet_network(net + 1, 8));
        assert!(!is_subnet_broadcast(bcast, 0));
    }

    #[test]
    fn block_iter_counts_and_saturates() {
        let blocks: Vec<_> = BlockIter::new(parse_addr("10.0.0.0").unwrap(), 3).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].base(), parse_addr("10.0.1.0").unwrap());
        // Saturate at end of space.
        let blocks: Vec<_> = BlockIter::new(parse_addr("255.255.255.0").unwrap(), 10).collect();
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn addr_string_roundtrip() {
        let a = parse_addr("8.8.4.4").unwrap();
        assert_eq!(fmt_addr(a), "8.8.4.4");
        assert_eq!(parse_addr("not-an-ip"), None);
    }
}
