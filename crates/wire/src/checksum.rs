//! RFC 1071 Internet checksum.
//!
//! Used by the IPv4 header, ICMP, UDP (with pseudo-header) and TCP (with
//! pseudo-header). The incremental [`Checksum`] accumulator lets callers
//! fold a pseudo-header, a header and a payload without concatenating them.

/// One's-complement sum accumulator for the Internet checksum.
///
/// Fold data in with [`Checksum::add_bytes`] / [`Checksum::add_u16`] and
/// finish with [`Checksum::finish`]. Odd-length segments are handled the way
/// RFC 1071 specifies: a trailing byte is padded with a zero *within its own
/// segment*, which matches how the pseudo-header and payload are summed by
/// real stacks (each field is 16-bit aligned).
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// A fresh accumulator with a zero partial sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a 16-bit word (host order value, summed as a big-endian word).
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Fold a 32-bit value as two 16-bit words (e.g. an IPv4 address).
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16(value as u16);
    }

    /// Fold a byte slice. A trailing odd byte is padded with zero.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_u16(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Finish: fold carries and take the one's complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the RFC 1071 checksum of a single buffer.
///
/// ```
/// let mut header = [0x45u8, 0x00, 0x00, 0x14, 0, 0, 0, 0, 64, 1, 0, 0,
///                   10, 0, 0, 1, 10, 0, 0, 2];
/// let ck = beware_wire::checksum::internet_checksum(&header);
/// header[10..12].copy_from_slice(&ck.to_be_bytes());
/// assert!(beware_wire::checksum::verify(&header));
/// ```
///
/// The checksum field inside the buffer must be zeroed by the caller before
/// computing (or the function can be used for verification: summing a buffer
/// that *contains* a correct checksum yields `0`).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is in place: correct iff the
/// complement-sum over the whole buffer is zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worked example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
    #[test]
    fn rfc1071_worked_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // RFC gives the one's complement sum as 0xddf2, checksum = !0xddf2.
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 8]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verification_of_embedded_checksum() {
        let mut data = [
            0x45u8, 0x00, 0x00, 0x1c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x01, 0, 0, 0xac, 0x10, 0x0a,
            0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[13] ^= 0x40;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_equals_one_shot_for_aligned_segments() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8, 9, 10];
        let mut inc = Checksum::new();
        inc.add_bytes(&a);
        inc.add_bytes(&b);
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(inc.finish(), internet_checksum(&whole));
    }

    #[test]
    fn add_u32_equals_two_words() {
        let mut a = Checksum::new();
        a.add_u32(0xc0a8_0101);
        let mut b = Checksum::new();
        b.add_u16(0xc0a8);
        b.add_u16(0x0101);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn carry_folding_handles_many_max_words() {
        let data = vec![0xffu8; 64 * 1024];
        // Sum of 32768 0xffff words; must not overflow or hang.
        let _ = internet_checksum(&data);
    }
}
