//! Error type shared by all decoders in this crate.

use core::fmt;

/// Reasons a byte buffer fails to decode as a given packet type.
///
/// Decoders validate on construction; every accessor called afterwards is
/// panic-free. The error carries enough detail to be actionable in logs
/// without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer is shorter than the fixed header of the packet type.
    Truncated {
        /// Bytes required by the header.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A version/IHL/type field identifies a packet we do not model.
    Malformed(&'static str),
    /// A length field points outside the buffer.
    BadLength {
        /// The claimed length.
        claimed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Checksum found in the packet.
        found: u16,
        /// Checksum recomputed over the packet.
        computed: u16,
    },
    /// A probe payload failed its validation tag, i.e. the response does
    /// not correspond to a probe we sent (or was corrupted in flight).
    BadValidation,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated packet: need {need} bytes, have {have}")
            }
            WireError::Malformed(what) => write!(f, "malformed packet: {what}"),
            WireError::BadLength { claimed, have } => {
                write!(f, "bad length field: claims {claimed} bytes, buffer has {have}")
            }
            WireError::BadChecksum { found, computed } => {
                write!(f, "bad checksum: found {found:#06x}, computed {computed:#06x}")
            }
            WireError::BadValidation => write!(f, "probe payload failed validation tag"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = WireError::Truncated { need: 20, have: 7 };
        assert_eq!(e.to_string(), "truncated packet: need 20 bytes, have 7");
        let e = WireError::BadChecksum { found: 0x1234, computed: 0xabcd };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));
    }

    #[test]
    fn error_is_copy_and_eq() {
        let e = WireError::Malformed("x");
        let f = e;
        assert_eq!(e, f);
    }
}
