//! ICMP message encoding and zero-copy decoding.
//!
//! Echo request/reply carry the probe identifier, sequence number and an
//! opaque payload (see [`crate::payload`] for what the stateless scanner
//! puts there). Destination-unreachable and time-exceeded are modeled
//! because the ISI survey records them — the analysis pipeline must be able
//! to recognize and exclude them ("we ignore all probes associated with such
//! responses since the latency of ICMP error responses is not relevant").

use crate::checksum::internet_checksum;
use crate::error::WireError;
use crate::Result;

/// Fixed ICMP header length in bytes (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

const TYPE_ECHO_REPLY: u8 = 0;
const TYPE_DEST_UNREACHABLE: u8 = 3;
const TYPE_ECHO_REQUEST: u8 = 8;
const TYPE_TIME_EXCEEDED: u8 = 11;

/// The ICMP message kinds this stack models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpKind {
    /// Echo request (type 8): what a prober sends.
    EchoRequest {
        /// Identifier (probers typically burn their PID or a hash here).
        ident: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Echo reply (type 0): what a responsive host answers.
    EchoReply {
        /// Identifier echoed back.
        ident: u16,
        /// Sequence number echoed back.
        seq: u16,
    },
    /// Destination unreachable (type 3) with its code.
    DestUnreachable {
        /// RFC 792 code (0 net, 1 host, 3 port, ...).
        code: u8,
    },
    /// Time exceeded (type 11) with its code.
    TimeExceeded {
        /// RFC 792 code (0 TTL expired in transit).
        code: u8,
    },
    /// Any other type/code, preserved verbatim.
    Other {
        /// ICMP type.
        ty: u8,
        /// ICMP code.
        code: u8,
    },
}

impl IcmpKind {
    /// The on-wire type byte.
    pub fn type_byte(self) -> u8 {
        match self {
            IcmpKind::EchoRequest { .. } => TYPE_ECHO_REQUEST,
            IcmpKind::EchoReply { .. } => TYPE_ECHO_REPLY,
            IcmpKind::DestUnreachable { .. } => TYPE_DEST_UNREACHABLE,
            IcmpKind::TimeExceeded { .. } => TYPE_TIME_EXCEEDED,
            IcmpKind::Other { ty, .. } => ty,
        }
    }

    /// True for echo request or reply.
    pub fn is_echo(self) -> bool {
        matches!(self, IcmpKind::EchoRequest { .. } | IcmpKind::EchoReply { .. })
    }

    /// True for the error kinds the survey excludes from latency analysis.
    pub fn is_error(self) -> bool {
        matches!(self, IcmpKind::DestUnreachable { .. } | IcmpKind::TimeExceeded { .. })
    }

    /// The reply kind matching this request, if it is an echo request.
    pub fn reply(self) -> Option<IcmpKind> {
        match self {
            IcmpKind::EchoRequest { ident, seq } => Some(IcmpKind::EchoReply { ident, seq }),
            _ => None,
        }
    }
}

/// Owned representation of an ICMP message: a kind plus payload length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpRepr {
    /// Message kind (type/code/rest-of-header).
    pub kind: IcmpKind,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl IcmpRepr {
    /// Total emitted length.
    pub fn len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// True if the emitted message would carry no payload.
    pub fn is_empty(&self) -> bool {
        self.payload_len == 0
    }

    /// Emit header and `payload` into `buf`, computing the checksum over
    /// the whole message. Returns bytes written.
    pub fn emit(&self, payload: &[u8], buf: &mut [u8]) -> Result<usize> {
        if payload.len() != self.payload_len {
            return Err(WireError::Malformed("payload length mismatch with repr"));
        }
        let total = self.len();
        if buf.len() < total {
            return Err(WireError::Truncated { need: total, have: buf.len() });
        }
        let (ty, code, rest) = match self.kind {
            IcmpKind::EchoRequest { ident, seq } => {
                (TYPE_ECHO_REQUEST, 0u8, (u32::from(ident) << 16) | u32::from(seq))
            }
            IcmpKind::EchoReply { ident, seq } => {
                (TYPE_ECHO_REPLY, 0, (u32::from(ident) << 16) | u32::from(seq))
            }
            IcmpKind::DestUnreachable { code } => (TYPE_DEST_UNREACHABLE, code, 0),
            IcmpKind::TimeExceeded { code } => (TYPE_TIME_EXCEEDED, code, 0),
            IcmpKind::Other { ty, code } => (ty, code, 0),
        };
        buf[0] = ty;
        buf[1] = code;
        buf[2..4].fill(0);
        buf[4..8].copy_from_slice(&rest.to_be_bytes());
        buf[8..total].copy_from_slice(payload);
        let ck = internet_checksum(&buf[..total]);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        Ok(total)
    }
}

/// Zero-copy view over a byte buffer holding an ICMP message.
#[derive(Debug)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Validate `buffer` (length and checksum) and build a view.
    pub fn parse(buffer: T) -> Result<Self> {
        let data = buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: data.len() });
        }
        let computed = internet_checksum(data);
        if computed != 0 {
            let found = u16::from_be_bytes([data[2], data[3]]);
            return Err(WireError::BadChecksum { found, computed });
        }
        Ok(IcmpPacket { buffer })
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// The message kind.
    pub fn kind(&self) -> IcmpKind {
        let d = self.data();
        let ident = u16::from_be_bytes([d[4], d[5]]);
        let seq = u16::from_be_bytes([d[6], d[7]]);
        match (d[0], d[1]) {
            (TYPE_ECHO_REQUEST, 0) => IcmpKind::EchoRequest { ident, seq },
            (TYPE_ECHO_REPLY, 0) => IcmpKind::EchoReply { ident, seq },
            (TYPE_DEST_UNREACHABLE, code) => IcmpKind::DestUnreachable { code },
            (TYPE_TIME_EXCEEDED, code) => IcmpKind::TimeExceeded { code },
            (ty, code) => IcmpKind::Other { ty, code },
        }
    }

    /// The payload following the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.data()[HEADER_LEN..]
    }

    /// Owned representation.
    pub fn repr(&self) -> IcmpRepr {
        IcmpRepr { kind: self.kind(), payload_len: self.payload().len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_request_roundtrip() {
        let repr =
            IcmpRepr { kind: IcmpKind::EchoRequest { ident: 0x4242, seq: 7 }, payload_len: 16 };
        let payload = [0xa5u8; 16];
        let mut buf = vec![0u8; repr.len()];
        assert_eq!(repr.emit(&payload, &mut buf).unwrap(), 24);
        let pkt = IcmpPacket::parse(&buf[..]).unwrap();
        assert_eq!(pkt.kind(), IcmpKind::EchoRequest { ident: 0x4242, seq: 7 });
        assert_eq!(pkt.payload(), &payload);
        assert_eq!(pkt.repr(), repr);
    }

    #[test]
    fn reply_matches_request() {
        let req = IcmpKind::EchoRequest { ident: 1, seq: 2 };
        assert_eq!(req.reply(), Some(IcmpKind::EchoReply { ident: 1, seq: 2 }));
        assert_eq!(IcmpKind::EchoReply { ident: 1, seq: 2 }.reply(), None);
    }

    #[test]
    fn error_kinds_flagged() {
        assert!(IcmpKind::DestUnreachable { code: 1 }.is_error());
        assert!(IcmpKind::TimeExceeded { code: 0 }.is_error());
        assert!(!IcmpKind::EchoReply { ident: 0, seq: 0 }.is_error());
        assert!(IcmpKind::EchoRequest { ident: 0, seq: 0 }.is_echo());
        assert!(!IcmpKind::Other { ty: 13, code: 0 }.is_echo());
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let repr = IcmpRepr { kind: IcmpKind::EchoReply { ident: 9, seq: 9 }, payload_len: 0 };
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&[], &mut buf).unwrap();
        buf[7] ^= 1;
        assert!(matches!(IcmpPacket::parse(&buf[..]), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            IcmpPacket::parse(&[0u8; 4][..]),
            Err(WireError::Truncated { need: 8, have: 4 })
        ));
    }

    #[test]
    fn payload_length_must_match_repr() {
        let repr = IcmpRepr { kind: IcmpKind::EchoRequest { ident: 0, seq: 0 }, payload_len: 4 };
        let mut buf = vec![0u8; 32];
        assert!(repr.emit(&[0u8; 3], &mut buf).is_err());
    }

    #[test]
    fn other_types_preserved() {
        let repr = IcmpRepr { kind: IcmpKind::Other { ty: 13, code: 2 }, payload_len: 0 };
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&[], &mut buf).unwrap();
        let pkt = IcmpPacket::parse(&buf[..]).unwrap();
        assert_eq!(pkt.kind(), IcmpKind::Other { ty: 13, code: 2 });
    }
}
