//! IPv4 header encoding and zero-copy decoding.
//!
//! Only what active probing needs: the fixed 20-byte header, options are
//! tolerated on decode (skipped via IHL) but never emitted. The header
//! checksum is generated on emit and verified on parse, since the analysis
//! pipeline must be able to trust TTLs (the paper fingerprinted
//! firewall-sourced TCP RSTs by their constant TTL).

use crate::checksum::{internet_checksum, Checksum};
use crate::error::WireError;
use crate::Result;

/// Minimum (and only emitted) IPv4 header length in bytes.
pub const HEADER_LEN: usize = 20;

/// The IP protocol numbers this stack cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }
}

/// Parsed, owned representation of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address, host order.
    pub src: u32,
    /// Destination address, host order.
    pub dst: u32,
    /// Layer-4 protocol.
    pub protocol: Protocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by some probers as a side channel).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// Payload length in bytes (total length minus header).
    pub payload_len: usize,
}

impl Ipv4Header {
    /// Total length this header will claim when emitted.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the 20-byte header into `buf`, computing the checksum.
    ///
    /// `buf` must be at least [`HEADER_LEN`] bytes; returns the number of
    /// bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: buf.len() });
        }
        let total = self.total_len();
        if total > usize::from(u16::MAX) {
            return Err(WireError::Malformed("IPv4 total length exceeds 65535"));
        }
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let flags: u16 = if self.dont_frag { 0x4000 } else { 0 };
        buf[6..8].copy_from_slice(&flags.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol.into();
        buf[10..12].fill(0);
        buf[12..16].copy_from_slice(&self.src.to_be_bytes());
        buf[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let ck = internet_checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        Ok(HEADER_LEN)
    }

    /// Fold this header's pseudo-header (src, dst, protocol, L4 length)
    /// into a checksum accumulator, as required by UDP and TCP.
    pub fn pseudo_header_checksum(&self, l4_len: u16) -> Checksum {
        let mut c = Checksum::new();
        c.add_u32(self.src);
        c.add_u32(self.dst);
        c.add_u16(u16::from(u8::from(self.protocol)));
        c.add_u16(l4_len);
        c
    }
}

/// Zero-copy view over a byte buffer holding an IPv4 packet.
///
/// Construction ([`Ipv4Packet::parse`]) validates version, IHL, the length
/// fields and the header checksum; accessors after that never panic.
#[derive(Debug)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
    header_len: usize,
    total_len: usize,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Validate `buffer` as an IPv4 packet and build a view.
    pub fn parse(buffer: T) -> Result<Self> {
        let data = buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: data.len() });
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::Malformed("IP version is not 4"));
        }
        let header_len = usize::from(data[0] & 0x0f) * 4;
        if header_len < HEADER_LEN {
            return Err(WireError::Malformed("IHL shorter than minimum header"));
        }
        if data.len() < header_len {
            return Err(WireError::Truncated { need: header_len, have: data.len() });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < header_len || total_len > data.len() {
            return Err(WireError::BadLength { claimed: total_len, have: data.len() });
        }
        let computed = internet_checksum(&data[..header_len]);
        if computed != 0 {
            let found = u16::from_be_bytes([data[10], data[11]]);
            return Err(WireError::BadChecksum { found, computed });
        }
        Ok(Ipv4Packet { buffer, header_len, total_len })
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source address, host order.
    pub fn src(&self) -> u32 {
        let d = self.data();
        u32::from_be_bytes([d[12], d[13], d[14], d[15]])
    }

    /// Destination address, host order.
    pub fn dst(&self) -> u32 {
        let d = self.data();
        u32::from_be_bytes([d[16], d[17], d[18], d[19]])
    }

    /// Layer-4 protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.data()[9])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.data()[8]
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.data();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// The layer-4 payload (respecting total length, excluding any padding
    /// trailing the IP datagram in the buffer).
    pub fn payload(&self) -> &[u8] {
        &self.data()[self.header_len..self.total_len]
    }

    /// Owned header representation.
    pub fn header(&self) -> Ipv4Header {
        let d = self.data();
        Ipv4Header {
            src: self.src(),
            dst: self.dst(),
            protocol: self.protocol(),
            ttl: self.ttl(),
            ident: self.ident(),
            dont_frag: d[6] & 0x40 != 0,
            payload_len: self.total_len - self.header_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::parse_addr;

    fn sample_header() -> Ipv4Header {
        Ipv4Header {
            src: parse_addr("192.0.2.1").unwrap(),
            dst: parse_addr("198.51.100.37").unwrap(),
            protocol: Protocol::Icmp,
            ttl: 64,
            ident: 0xbeef,
            dont_frag: true,
            payload_len: 8,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.total_len()];
        let n = hdr.emit(&mut buf).unwrap();
        assert_eq!(n, HEADER_LEN);
        let pkt = Ipv4Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.header(), hdr);
        assert_eq!(pkt.payload().len(), 8);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.total_len()];
        hdr.emit(&mut buf).unwrap();
        buf[0] = 0x65;
        assert_eq!(
            Ipv4Packet::parse(&buf[..]).unwrap_err(),
            WireError::Malformed("IP version is not 4")
        );
    }

    #[test]
    fn parse_rejects_corrupt_checksum() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.total_len()];
        hdr.emit(&mut buf).unwrap();
        buf[8] = buf[8].wrapping_add(1); // bump TTL without fixing checksum
        assert!(matches!(Ipv4Packet::parse(&buf[..]), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn parse_rejects_truncation_and_bad_length() {
        assert!(matches!(
            Ipv4Packet::parse(&[0u8; 10][..]),
            Err(WireError::Truncated { need: 20, have: 10 })
        ));
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.total_len()];
        hdr.emit(&mut buf).unwrap();
        // Claim a total length beyond the buffer.
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(Ipv4Packet::parse(&buf[..]), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn payload_excludes_trailing_padding() {
        let hdr = sample_header();
        let mut buf = vec![0u8; hdr.total_len() + 6]; // 6 bytes of link padding
        hdr.emit(&mut buf).unwrap();
        let pkt = Ipv4Packet::parse(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), hdr.payload_len);
    }

    #[test]
    fn protocol_conversion_roundtrip() {
        for v in 0u8..=255 {
            assert_eq!(u8::from(Protocol::from(v)), v);
        }
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let hdr = sample_header();
        let mut manual = Checksum::new();
        manual.add_u32(hdr.src);
        manual.add_u32(hdr.dst);
        manual.add_u16(1);
        manual.add_u16(16);
        assert_eq!(hdr.pseudo_header_checksum(16).finish(), manual.finish());
    }
}
