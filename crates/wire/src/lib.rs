//! # beware-wire
//!
//! Wire formats used by the active-probing stack of the *Timeouts: Beware
//! Surprisingly High Delay* (IMC 2015) reproduction.
//!
//! The crate provides allocation-light encoders and zero-copy decoder views
//! for the four packet types the paper's probers emit and observe:
//!
//! * [`ipv4`] — the IPv4 header (with RFC 1071 header checksum),
//! * [`icmp`] — ICMP echo request/reply and the error messages the ISI
//!   survey records but excludes from latency analysis,
//! * [`udp`] — UDP datagrams used by the protocol-comparison experiment
//!   (Figure 10 of the paper),
//! * [`tcp`] — TCP ACK probes and the firewall-sourced RSTs the paper
//!   identifies by their constant TTL.
//!
//! [`payload`] implements the probe-payload embedding the authors
//! contributed to zmap (`module_icmp_echo_time.c`): the original
//! destination address and send timestamp are carried inside the echo
//! payload together with a validation tag, which lets a *stateless* scanner
//! compute RTTs and detect responses sourced from a different address than
//! the probed one (broadcast responders).
//!
//! [`addr`] holds the IPv4 address-block utilities the analysis relies on
//! (/24 arithmetic, broadcast-looking last octets, block iteration).
//!
//! Design follows the smoltcp school: decoder types are thin views over a
//! byte slice that validate on construction, accessors never panic after
//! validation, and encoders write into caller-provided buffers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod checksum;
pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod payload;
pub mod tcp;
pub mod udp;

pub use addr::{Block24, BlockIter, LastOctetClass};
pub use checksum::{internet_checksum, Checksum};
pub use error::WireError;
pub use icmp::{IcmpKind, IcmpPacket, IcmpRepr};
pub use ipv4::{Ipv4Header, Ipv4Packet, Protocol};
pub use payload::{ProbePayload, PAYLOAD_LEN};
pub use tcp::{TcpFlags, TcpPacket, TcpRepr};
pub use udp::{UdpPacket, UdpRepr};

/// Result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, WireError>;
