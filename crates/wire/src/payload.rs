//! Zmap-style probe payload embedding.
//!
//! The paper's authors extended zmap's ICMP module
//! (`module_icmp_echo_time.c`) so a **stateless** scanner can compute RTTs
//! and attribute responses: the echo payload carries the *original
//! destination address* and the *send timestamp*; when the response returns
//! — from whatever source address — the scanner recovers both, detects
//! broadcast responders (response source ≠ embedded destination) and
//! computes the RTT without keeping any per-probe state.
//!
//! [`ProbePayload`] reproduces that design, plus a keyed validation tag (in
//! the spirit of zmap's validation field) so stray or forged echo responses
//! do not pollute a scan. The tag is a fixed-width mix of the key and the
//! embedded fields via SplitMix64 — collision-resistant enough to reject
//! accidental matches, *not* a cryptographic MAC, same as upstream zmap's
//! threat model.

use crate::error::WireError;
use crate::Result;

/// Encoded payload length in bytes: magic(4) ‖ dest(4) ‖ send_ns(8) ‖ tag(8).
pub const PAYLOAD_LEN: usize = 24;

const MAGIC: [u8; 4] = *b"bwre";

/// The fields a stateless probe embeds in its echo payload.
///
/// ```
/// use beware_wire::payload::ProbePayload;
///
/// let key = 0xfeed_beef;
/// let sent = ProbePayload { dest: 0x0a00_0001, send_ns: 1_000_000 };
/// let wire = sent.encode(key);
/// // ...the echo comes back, possibly from a different source address...
/// let got = ProbePayload::decode(&wire, key).unwrap();
/// assert_eq!(got.dest, 0x0a00_0001);
/// assert_eq!(got.rtt_ns(1_250_000), Some(250_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePayload {
    /// The address the probe was originally sent to (host order). On
    /// receive, comparing this against the response's source address
    /// exposes broadcast responders.
    pub dest: u32,
    /// Send timestamp in nanoseconds since the scan epoch.
    pub send_ns: u64,
}

impl ProbePayload {
    /// Encode into a fixed-size buffer, tagging with `key`.
    pub fn encode(&self, key: u64) -> [u8; PAYLOAD_LEN] {
        let mut buf = [0u8; PAYLOAD_LEN];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..8].copy_from_slice(&self.dest.to_be_bytes());
        buf[8..16].copy_from_slice(&self.send_ns.to_be_bytes());
        buf[16..24].copy_from_slice(&self.tag(key).to_be_bytes());
        buf
    }

    /// Decode and validate a payload previously produced by
    /// [`ProbePayload::encode`] with the same `key`.
    ///
    /// Returns [`WireError::Truncated`] for short buffers,
    /// [`WireError::Malformed`] when the magic is absent (payload from a
    /// foreign prober), and [`WireError::BadValidation`] when the magic is
    /// present but the tag does not verify (corruption or forgery).
    pub fn decode(buf: &[u8], key: u64) -> Result<Self> {
        if buf.len() < PAYLOAD_LEN {
            return Err(WireError::Truncated { need: PAYLOAD_LEN, have: buf.len() });
        }
        if buf[0..4] != MAGIC {
            return Err(WireError::Malformed("probe payload magic absent"));
        }
        let dest = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let send_ns = u64::from_be_bytes(buf[8..16].try_into().expect("length checked"));
        let payload = ProbePayload { dest, send_ns };
        let tag = u64::from_be_bytes(buf[16..24].try_into().expect("length checked"));
        if tag != payload.tag(key) {
            return Err(WireError::BadValidation);
        }
        Ok(payload)
    }

    /// RTT implied by this payload for a response received at `recv_ns`
    /// (nanoseconds since the same scan epoch). `None` if the clock ran
    /// backwards, which a robust scanner must tolerate rather than panic.
    pub fn rtt_ns(&self, recv_ns: u64) -> Option<u64> {
        recv_ns.checked_sub(self.send_ns)
    }

    fn tag(&self, key: u64) -> u64 {
        let mut x = key ^ (u64::from(self.dest) << 17) ^ self.send_ns.rotate_left(31);
        // SplitMix64 finalizer, applied twice for better avalanche of the
        // low-entropy address field.
        for _ in 0..2 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xdead_beef_cafe_f00d;

    #[test]
    fn encode_decode_roundtrip() {
        let p = ProbePayload { dest: 0xc633_6401, send_ns: 1_234_567_890_123 };
        let buf = p.encode(KEY);
        assert_eq!(ProbePayload::decode(&buf, KEY).unwrap(), p);
    }

    #[test]
    fn wrong_key_rejected() {
        let p = ProbePayload { dest: 1, send_ns: 2 };
        let buf = p.encode(KEY);
        assert_eq!(ProbePayload::decode(&buf, KEY + 1).unwrap_err(), WireError::BadValidation);
    }

    #[test]
    fn flipped_bit_rejected() {
        let p = ProbePayload { dest: 0x0a00_0001, send_ns: 55_000 };
        let buf = p.encode(KEY);
        for i in 0..PAYLOAD_LEN {
            let mut corrupt = buf;
            corrupt[i] ^= 0x01;
            assert!(
                ProbePayload::decode(&corrupt, KEY).is_err(),
                "bit flip at byte {i} must not validate"
            );
        }
    }

    #[test]
    fn foreign_payload_distinguished_from_forgery() {
        let buf = [0u8; PAYLOAD_LEN];
        assert_eq!(
            ProbePayload::decode(&buf, KEY).unwrap_err(),
            WireError::Malformed("probe payload magic absent")
        );
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            ProbePayload::decode(&[0u8; 10], KEY),
            Err(WireError::Truncated { need: PAYLOAD_LEN, have: 10 })
        ));
    }

    #[test]
    fn rtt_computation_and_backward_clock() {
        let p = ProbePayload { dest: 9, send_ns: 1_000 };
        assert_eq!(p.rtt_ns(4_500), Some(3_500));
        assert_eq!(p.rtt_ns(999), None);
    }

    #[test]
    fn tag_differs_across_fields() {
        let a = ProbePayload { dest: 1, send_ns: 100 }.encode(KEY);
        let b = ProbePayload { dest: 2, send_ns: 100 }.encode(KEY);
        let c = ProbePayload { dest: 1, send_ns: 101 }.encode(KEY);
        assert_ne!(a[16..], b[16..]);
        assert_ne!(a[16..], c[16..]);
    }
}
