//! TCP segment encoding and zero-copy decoding.
//!
//! The paper's protocol-comparison experiment (Figure 10) sends **TCP ACK**
//! probes — deliberately not SYNs, "because they may appear to be associated
//! with security vulnerability scanning" — and observes two response
//! populations: genuine end-host RSTs, and RSTs synthesized by firewalls,
//! identifiable because every address in a /24 answers with the same
//! constant TTL in about 200 ms. This module models the segment header and
//! the flag set needed to express that experiment; options and payload data
//! are out of scope for probing.

use crate::error::WireError;
use crate::ipv4::Ipv4Header;
use crate::Result;

/// TCP header length without options, in bytes.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (subset relevant to probing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// RST.
    pub rst: bool,
    /// FIN.
    pub fin: bool,
}

impl TcpFlags {
    /// The classic ACK probe.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, rst: false, fin: false };
    /// A bare RST (host or firewall response to an unexpected ACK).
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, rst: true, fin: false };

    fn to_byte(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags { fin: b & 0x01 != 0, syn: b & 0x02 != 0, rst: b & 0x04 != 0, ack: b & 0x10 != 0 }
    }
}

/// Owned representation of a (option-less, data-less) TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack_no: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpRepr {
    /// Emitted length (no options, no payload).
    pub fn len(&self) -> usize {
        HEADER_LEN
    }

    /// Always false; present for parallelism with the other reprs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Emit the segment into `buf`, computing the checksum with the
    /// pseudo-header derived from `ip`. Returns bytes written.
    pub fn emit(&self, ip: &Ipv4Header, buf: &mut [u8]) -> Result<usize> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: buf.len() });
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack_no.to_be_bytes());
        buf[12] = (5u8) << 4; // data offset 5 words
        buf[13] = self.flags.to_byte();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].fill(0); // checksum placeholder
        buf[18..20].fill(0); // urgent pointer
        let mut ck = ip.pseudo_header_checksum(HEADER_LEN as u16);
        ck.add_bytes(&buf[..HEADER_LEN]);
        buf[16..18].copy_from_slice(&ck.finish().to_be_bytes());
        Ok(HEADER_LEN)
    }

    /// The RST a host (or firewall) sends in response to this unexpected
    /// ACK probe, per RFC 793: `seq = ack_no` of the offending segment.
    pub fn rst_reply(&self) -> TcpRepr {
        TcpRepr {
            src_port: self.dst_port,
            dst_port: self.src_port,
            seq: self.ack_no,
            ack_no: 0,
            flags: TcpFlags::RST,
            window: 0,
        }
    }
}

/// Zero-copy view over a byte buffer holding a TCP segment.
#[derive(Debug)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
    header_len: usize,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Validate `buffer` against the pseudo-header from `ip` and build a
    /// view. Options are tolerated; segment data is exposed via
    /// [`TcpPacket::payload`].
    pub fn parse(buffer: T, ip: &Ipv4Header) -> Result<Self> {
        let data = buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: data.len() });
        }
        let header_len = usize::from(data[12] >> 4) * 4;
        if header_len < HEADER_LEN {
            return Err(WireError::Malformed("TCP data offset shorter than minimum"));
        }
        if data.len() < header_len {
            return Err(WireError::Truncated { need: header_len, have: data.len() });
        }
        let seg_len = data.len();
        if seg_len > usize::from(u16::MAX) {
            return Err(WireError::Malformed("TCP segment exceeds 65535 bytes"));
        }
        let mut ck = ip.pseudo_header_checksum(seg_len as u16);
        ck.add_bytes(data);
        let computed = ck.finish();
        if computed != 0 {
            let found = u16::from_be_bytes([data[16], data[17]]);
            return Err(WireError::BadChecksum { found, computed });
        }
        Ok(TcpPacket { buffer, header_len })
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.data();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.data();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let d = self.data();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    /// Acknowledgment number.
    pub fn ack_no(&self) -> u32 {
        let d = self.data();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_byte(self.data()[13])
    }

    /// Segment data following header and options.
    pub fn payload(&self) -> &[u8] {
        &self.data()[self.header_len..]
    }

    /// Owned representation (options dropped).
    pub fn repr(&self) -> TcpRepr {
        let d = self.data();
        TcpRepr {
            src_port: self.src_port(),
            dst_port: self.dst_port(),
            seq: self.seq(),
            ack_no: self.ack_no(),
            flags: self.flags(),
            window: u16::from_be_bytes([d[14], d[15]]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::parse_addr;
    use crate::ipv4::Protocol;

    fn ip_header() -> Ipv4Header {
        Ipv4Header {
            src: parse_addr("10.9.8.7").unwrap(),
            dst: parse_addr("203.0.113.77").unwrap(),
            protocol: Protocol::Tcp,
            ttl: 64,
            ident: 77,
            dont_frag: true,
            payload_len: HEADER_LEN,
        }
    }

    fn ack_probe() -> TcpRepr {
        TcpRepr {
            src_port: 54321,
            dst_port: 80,
            seq: 0x1111_2222,
            ack_no: 0x3333_4444,
            flags: TcpFlags::ACK,
            window: 1024,
        }
    }

    #[test]
    fn ack_probe_roundtrip() {
        let repr = ack_probe();
        let ip = ip_header();
        let mut buf = vec![0u8; HEADER_LEN];
        repr.emit(&ip, &mut buf).unwrap();
        let pkt = TcpPacket::parse(&buf[..], &ip).unwrap();
        assert_eq!(pkt.repr(), repr);
        assert!(pkt.flags().ack);
        assert!(!pkt.flags().syn);
    }

    #[test]
    fn rst_reply_follows_rfc793() {
        let probe = ack_probe();
        let rst = probe.rst_reply();
        assert!(rst.flags.rst && !rst.flags.ack);
        assert_eq!(rst.seq, probe.ack_no);
        assert_eq!(rst.src_port, probe.dst_port);
        assert_eq!(rst.dst_port, probe.src_port);
    }

    #[test]
    fn checksum_binds_addresses() {
        let repr = ack_probe();
        let ip = ip_header();
        let mut buf = vec![0u8; HEADER_LEN];
        repr.emit(&ip, &mut buf).unwrap();
        let mut other = ip;
        other.dst = other.dst.wrapping_add(1);
        assert!(matches!(TcpPacket::parse(&buf[..], &other), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0u8..=0x1f {
            let f = TcpFlags::from_byte(b);
            // Only the modeled bits roundtrip; reserved bits drop.
            let b2 = f.to_byte();
            assert_eq!(b2 & 0x17, b & 0x17);
        }
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            TcpPacket::parse(&[0u8; 12][..], &ip_header()),
            Err(WireError::Truncated { .. })
        ));
    }
}
