//! UDP datagram encoding and zero-copy decoding.
//!
//! Used by the protocol-comparison experiment (Figure 10): the paper sends
//! triplets of UDP messages to high-latency addresses and compares their
//! delay distribution against ICMP and TCP. The checksum is computed over
//! the RFC 768 pseudo-header, for which callers supply the enclosing
//! [`crate::ipv4::Ipv4Header`].

use crate::error::WireError;
use crate::ipv4::Ipv4Header;
use crate::Result;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Owned representation of a UDP datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Total emitted length (header plus payload).
    pub fn len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// True if the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload_len == 0
    }

    /// Emit header and `payload` into `buf`, computing the checksum with
    /// the pseudo-header derived from `ip`. Returns bytes written.
    pub fn emit(&self, ip: &Ipv4Header, payload: &[u8], buf: &mut [u8]) -> Result<usize> {
        if payload.len() != self.payload_len {
            return Err(WireError::Malformed("payload length mismatch with repr"));
        }
        let total = self.len();
        if total > usize::from(u16::MAX) {
            return Err(WireError::Malformed("UDP length exceeds 65535"));
        }
        if buf.len() < total {
            return Err(WireError::Truncated { need: total, have: buf.len() });
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        buf[6..8].fill(0);
        buf[8..total].copy_from_slice(payload);
        let mut ck = ip.pseudo_header_checksum(total as u16);
        ck.add_bytes(&buf[..total]);
        let mut sum = ck.finish();
        // RFC 768: an all-zero transmitted checksum means "no checksum";
        // a computed zero is sent as all-ones.
        if sum == 0 {
            sum = 0xffff;
        }
        buf[6..8].copy_from_slice(&sum.to_be_bytes());
        Ok(total)
    }
}

/// Zero-copy view over a byte buffer holding a UDP datagram.
#[derive(Debug)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
    len: usize,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Validate `buffer` against the pseudo-header from `ip` and build a
    /// view. A zero checksum field is accepted as "checksum absent".
    pub fn parse(buffer: T, ip: &Ipv4Header) -> Result<Self> {
        let data = buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated { need: HEADER_LEN, have: data.len() });
        }
        let len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::BadLength { claimed: len, have: data.len() });
        }
        let found = u16::from_be_bytes([data[6], data[7]]);
        if found != 0 {
            let mut ck = ip.pseudo_header_checksum(len as u16);
            ck.add_bytes(&data[..len]);
            let computed = ck.finish();
            if computed != 0 {
                return Err(WireError::BadChecksum { found, computed });
            }
        }
        Ok(UdpPacket { buffer, len })
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.data();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.data();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The payload following the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.data()[HEADER_LEN..self.len]
    }

    /// Owned representation.
    pub fn repr(&self) -> UdpRepr {
        UdpRepr {
            src_port: self.src_port(),
            dst_port: self.dst_port(),
            payload_len: self.len - HEADER_LEN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::parse_addr;
    use crate::ipv4::Protocol;

    fn ip_header(payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            src: parse_addr("10.0.0.1").unwrap(),
            dst: parse_addr("10.0.0.2").unwrap(),
            protocol: Protocol::Udp,
            ttl: 64,
            ident: 1,
            dont_frag: false,
            payload_len,
        }
    }

    #[test]
    fn roundtrip_with_checksum() {
        let repr = UdpRepr { src_port: 33434, dst_port: 33435, payload_len: 12 };
        let payload = b"probe-window";
        let ip = ip_header(repr.len());
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, payload, &mut buf).unwrap();
        let pkt = UdpPacket::parse(&buf[..], &ip).unwrap();
        assert_eq!(pkt.repr(), repr);
        assert_eq!(pkt.payload(), payload);
    }

    #[test]
    fn checksum_depends_on_pseudo_header() {
        let repr = UdpRepr { src_port: 1, dst_port: 2, payload_len: 0 };
        let ip = ip_header(repr.len());
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, &[], &mut buf).unwrap();
        let mut wrong_ip = ip;
        wrong_ip.src = wrong_ip.src.wrapping_add(1);
        assert!(matches!(
            UdpPacket::parse(&buf[..], &wrong_ip),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn zero_checksum_accepted_as_absent() {
        let repr = UdpRepr { src_port: 5, dst_port: 6, payload_len: 2 };
        let ip = ip_header(repr.len());
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, &[1, 2], &mut buf).unwrap();
        buf[6..8].fill(0);
        let pkt = UdpPacket::parse(&buf[..], &ip).unwrap();
        assert_eq!(pkt.payload(), &[1, 2]);
    }

    #[test]
    fn bad_length_rejected() {
        let repr = UdpRepr { src_port: 5, dst_port: 6, payload_len: 0 };
        let ip = ip_header(repr.len());
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, &[], &mut buf).unwrap();
        buf[4..6].copy_from_slice(&64u16.to_be_bytes());
        assert!(matches!(UdpPacket::parse(&buf[..], &ip), Err(WireError::BadLength { .. })));
    }
}
