//! Property-based tests over the wire codecs: every representation that
//! emits must parse back to itself, checksums must verify, and corrupting
//! any byte of a checksummed region must be detected or change the parse.

use beware_wire::icmp::{IcmpKind, IcmpPacket, IcmpRepr};
use beware_wire::ipv4::{Ipv4Header, Ipv4Packet, Protocol};
use beware_wire::payload::{ProbePayload, PAYLOAD_LEN};
use beware_wire::tcp::{TcpFlags, TcpPacket, TcpRepr};
use beware_wire::udp::{UdpPacket, UdpRepr};
use beware_wire::{checksum, LastOctetClass};
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Icmp),
        Just(Protocol::Tcp),
        Just(Protocol::Udp),
        any::<u8>().prop_map(Protocol::from),
    ]
}

proptest! {
    #[test]
    fn checksum_of_buffer_with_embedded_sum_is_zero(data in proptest::collection::vec(any::<u8>(), 2..256)) {
        let mut data = data;
        // Zero a 16-bit-aligned checksum slot, compute, embed, verify.
        data[0] = 0;
        data[1] = 0;
        let ck = checksum::internet_checksum(&data);
        data[0..2].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(checksum::verify(&data));
    }

    #[test]
    fn ipv4_roundtrip(src in any::<u32>(), dst in any::<u32>(), proto in arb_protocol(),
                      ttl in any::<u8>(), ident in any::<u16>(), df in any::<bool>(),
                      payload_len in 0usize..512) {
        let hdr = Ipv4Header { src, dst, protocol: proto, ttl, ident, dont_frag: df, payload_len };
        let mut buf = vec![0u8; hdr.total_len()];
        hdr.emit(&mut buf).unwrap();
        let parsed = Ipv4Packet::parse(&buf[..]).unwrap();
        prop_assert_eq!(parsed.header(), hdr);
    }

    #[test]
    fn ipv4_single_byte_corruption_never_parses_to_same_header(
        src in any::<u32>(), dst in any::<u32>(), idx in 0usize..20, bit in 0u8..8
    ) {
        let hdr = Ipv4Header {
            src, dst, protocol: Protocol::Icmp, ttl: 64, ident: 7,
            dont_frag: false, payload_len: 0,
        };
        let mut buf = vec![0u8; hdr.total_len()];
        hdr.emit(&mut buf).unwrap();
        buf[idx] ^= 1 << bit;
        match Ipv4Packet::parse(&buf[..]) {
            // A 16-bit one's-complement checksum cannot catch every multi-bit
            // pattern, but any *single-bit* flip in the header must be caught
            // or alter version/IHL/length validation.
            Ok(p) => prop_assert_ne!(p.header(), hdr),
            Err(_) => {}
        }
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..128),
                           reply in any::<bool>()) {
        let kind = if reply {
            IcmpKind::EchoReply { ident, seq }
        } else {
            IcmpKind::EchoRequest { ident, seq }
        };
        let repr = IcmpRepr { kind, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&payload, &mut buf).unwrap();
        let pkt = IcmpPacket::parse(&buf[..]).unwrap();
        prop_assert_eq!(pkt.kind(), kind);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256),
                     src in any::<u32>(), dst in any::<u32>()) {
        let repr = UdpRepr { src_port: sp, dst_port: dp, payload_len: payload.len() };
        let ip = Ipv4Header {
            src, dst, protocol: Protocol::Udp, ttl: 64, ident: 0,
            dont_frag: false, payload_len: repr.len(),
        };
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, &payload, &mut buf).unwrap();
        let pkt = UdpPacket::parse(&buf[..], &ip).unwrap();
        prop_assert_eq!(pkt.repr(), repr);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    #[test]
    fn tcp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
                     ack_no in any::<u32>(), window in any::<u16>(),
                     syn in any::<bool>(), ack in any::<bool>(), rst in any::<bool>(), fin in any::<bool>(),
                     src in any::<u32>(), dst in any::<u32>()) {
        let repr = TcpRepr {
            src_port: sp, dst_port: dp, seq, ack_no,
            flags: TcpFlags { syn, ack, rst, fin }, window,
        };
        let ip = Ipv4Header {
            src, dst, protocol: Protocol::Tcp, ttl: 255, ident: 0,
            dont_frag: true, payload_len: repr.len(),
        };
        let mut buf = vec![0u8; repr.len()];
        repr.emit(&ip, &mut buf).unwrap();
        let pkt = TcpPacket::parse(&buf[..], &ip).unwrap();
        prop_assert_eq!(pkt.repr(), repr);
    }

    #[test]
    fn probe_payload_roundtrip(dest in any::<u32>(), send_ns in any::<u64>(), key in any::<u64>()) {
        let p = ProbePayload { dest, send_ns };
        let buf = p.encode(key);
        prop_assert_eq!(buf.len(), PAYLOAD_LEN);
        prop_assert_eq!(ProbePayload::decode(&buf, key).unwrap(), p);
    }

    #[test]
    fn probe_payload_key_separation(dest in any::<u32>(), send_ns in any::<u64>(),
                                    k1 in any::<u64>(), k2 in any::<u64>()) {
        prop_assume!(k1 != k2);
        let buf = ProbePayload { dest, send_ns }.encode(k1);
        prop_assert!(ProbePayload::decode(&buf, k2).is_err());
    }

    #[test]
    fn last_octet_class_total(o in any::<u8>()) {
        // Classification is total and broadcast-likeness matches its bits.
        let c = LastOctetClass::of(o);
        let expect = o.trailing_ones() >= 2 || o.trailing_zeros() >= 2;
        prop_assert_eq!(c.is_broadcast_like(), expect);
    }
}
