//! The paper's Section 7 advice as a running program: monitor cellular
//! hosts with the adaptive prober (retransmit at 3 s, keep listening to
//! 60 s) and watch, packet by packet, how a response arriving after the
//! naive deadline rescues a would-be false outage.
//!
//! ```sh
//! cargo run --release --example adaptive_monitor
//! ```

use beware::netsim::profile::{BlockProfile, EpisodeCfg, WakeupCfg};
use beware::netsim::rng::Dist;
use beware::netsim::world::World;
use beware::netsim::Simulation;
use beware::probe::adaptive::{AdaptiveCfg, AdaptiveProber};
use std::sync::Arc;

fn main() {
    // Cellular block with wake-up and short disconnect episodes.
    let mut world = World::new(0x60);
    world.add_block(
        0x0a0000,
        Arc::new(BlockProfile {
            base_rtt: Dist::LogNormal { median: 0.3, sigma: 0.3 },
            jitter: Dist::Exponential { mean: 0.1 },
            density: 0.5,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            wakeup: Some(WakeupCfg { host_prob: 1.0, ..Default::default() }),
            episodes: Some(EpisodeCfg {
                host_prob: 0.5,
                interval: Dist::Constant(300.0),
                duration: Dist::Constant(35.0),
                max_duration_secs: 40.0,
                buffer_prob: 1.0,
                buffer_cap: 200,
                blackout_secs_max: 5.0,
            }),
            ..Default::default()
        }),
    );
    let targets: Vec<u32> =
        (2u32..250).map(|o| 0x0a000000 + o).filter(|&a| world.is_live(a)).take(12).collect();
    println!("monitoring {} live cellular hosts (none is ever down)\n", targets.len());

    let prober = AdaptiveProber::new(targets, AdaptiveCfg { cycles: 6, ..Default::default() });
    // Attach a packet trace so the rescue is visible on the wire.
    let (prober, _world, summary, trace) =
        Simulation::new(world, prober).with_trace(4096).run_traced();

    let reports = prober.into_reports();
    let naive: u32 = reports.iter().map(|r| r.naive_outages).sum();
    let long: u32 = reports.iter().map(|r| r.outages).sum();
    let rescued: u32 = reports.iter().map(|r| r.rescued).sum();
    println!(
        "{} packets on the wire; naive prober would declare {naive} outages, \
         the listener declares {long} — {rescued} rescued.\n",
        summary.packets_sent + summary.packets_delivered
    );

    // Show a slice of the capture around a slow exchange: the first pair
    // whose reply arrived more than 9 s (the naive deadline) after its
    // request.
    let entries: Vec<_> = trace.entries().collect();
    let slow = entries.iter().enumerate().find(|(_, e)| {
        use beware::netsim::trace::Direction;
        use beware::wire::icmp::IcmpKind;
        if e.dir != Direction::Received {
            return false;
        }
        let beware::netsim::packet::L4::Icmp { kind: IcmpKind::EchoReply { seq, .. }, .. } =
            &e.pkt.l4
        else {
            return false;
        };
        // Find the matching request earlier in the capture.
        entries.iter().any(|s| {
            s.dir == Direction::Sent
                && s.pkt.dst == e.pkt.src
                && matches!(&s.pkt.l4,
                    beware::netsim::packet::L4::Icmp { kind: IcmpKind::EchoRequest { seq: q, .. }, .. }
                    if q == seq)
                && e.at.saturating_since(s.at).as_secs_f64() > 9.0
        })
    });
    match slow {
        Some((i, _)) => {
            println!("a rescue, as tcpdump would show it:");
            let lo = i.saturating_sub(4);
            for e in &entries[lo..(i + 1).min(entries.len())] {
                println!("  {}", e.render());
            }
            println!(
                "\nthe reply above arrived after the naive prober had already given up —\n\
                 only the keep-listening prober knows the host is alive."
            );
        }
        None => println!("(no >9 s exchange captured in this run's trace window)"),
    }
}
