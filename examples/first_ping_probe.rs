//! The first-ping experiment of Section 6.3, end to end: screen
//! high-latency addresses with a ping pair, then send 10-probe 1 Hz
//! trains and measure the radio wake-up.
//!
//! ```sh
//! cargo run --release --example first_ping_probe
//! ```

use beware::analysis::firstping::{analyze, FirstPingClass};
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;

fn main() {
    let scenario = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 0xf1a5,
        total_blocks: 256,
        vantage: VANTAGES[0],
    });
    let db = scenario.db();

    // Gather cellular addresses to probe (in the paper these come from
    // the survey's median-latency screen; here we may ask the oracle).
    let targets: Vec<u32> = scenario
        .plan
        .blocks()
        .filter(|&(b, asn)| db.as_info(asn).is_some_and(|i| i.kind.serves_cellular()) && b % 2 == 0)
        .flat_map(|(b, _)| (0u32..256).map(move |o| (b << 8) | o))
        .take(4000)
        .collect();

    // Ten pings, one per second, per target.
    let world = scenario.build_world();
    let live: Vec<u32> = targets.into_iter().filter(|&a| world.is_live(a)).collect();
    let jobs: Vec<PingJob> = live
        .iter()
        .enumerate()
        .map(|(i, &dst)| PingJob::train(dst, PingProto::Icmp, 10, 1.0, i as f64 * 0.05))
        .collect();
    println!("probing {} live cellular addresses with 10-ping 1 Hz trains...", jobs.len());
    let mut world = world;
    let (results, _) = ScamperCfg { prober_addr: 0xC0000207, seed: 7, grace_secs: 120.0 }
        .build(jobs)
        .run(&mut world);

    let streams: Vec<(u32, Vec<Option<f64>>)> =
        results.iter().map(|r| (r.dst, r.rtts.clone())).collect();
    let analysis = analyze(&streams);
    let c = analysis.counts;
    println!(
        "classified {}: first-ping above max(rest) {} ({:.0}%), between median and max {}, \
         at/below median {}",
        c.classified(),
        c.above_max,
        100.0 * c.above_max_fraction(),
        c.above_median,
        c.at_or_below_median
    );

    let setup = analysis.fig13_setup_time_cdf();
    println!(
        "wake-up estimate (RTT1 - min rest): median {:.2} s, p90 {:.2} s, max {:.2} s",
        setup.quantile(0.5).unwrap_or(0.0),
        setup.quantile(0.9).unwrap_or(0.0),
        setup.max().unwrap_or(0.0)
    );

    // A couple of concrete trains, to see the shape with eyes.
    println!("\nsample trains (RTTs in seconds):");
    for v in analysis.verdicts.iter().filter(|v| v.class == FirstPingClass::AboveMax).take(3) {
        let train: Vec<String> = results
            .iter()
            .find(|r| r.dst == v.dst)
            .expect("verdict from results")
            .rtts
            .iter()
            .map(|r| r.map_or("-".into(), |x| format!("{x:.2}")))
            .collect();
        println!("  {}: [{}]", std::net::Ipv4Addr::from(v.dst), train.join(", "));
    }
    println!(
        "\nthe paper's diagnosis, reproduced: the first ping pays the radio-negotiation \
         cost; followups ride the connected radio. A retried ping is NOT an independent \
         latency sample."
    );
}
