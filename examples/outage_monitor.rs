//! Why the timeout choice matters: a Thunderping-style outage monitor run
//! twice against the same world — once with the conventional 3 s timeout,
//! once with the paper's recommended keep-listening-to-60 s — and the
//! false outages counted.
//!
//! No host in this demo is ever down. Every "outage" detected is false,
//! caused purely by latency exceeding the timeout.
//!
//! ```sh
//! cargo run --release --example outage_monitor
//! ```

use beware::netsim::profile::{BlockProfile, EpisodeCfg, WakeupCfg};
use beware::netsim::rng::Dist;
use beware::netsim::world::World;
use beware::probe::prelude::*;
use std::sync::Arc;

/// Thunderping declares an address unresponsive after N consecutive
/// unanswered probes. Count such verdicts over a probe train.
fn false_outages(rtts: &[Option<f64>], timeout_secs: f64, retries: usize) -> usize {
    let mut outages = 0;
    let mut consecutive = 0;
    for rtt in rtts {
        let answered_in_time = rtt.is_some_and(|r| r <= timeout_secs);
        if answered_in_time {
            consecutive = 0;
        } else {
            consecutive += 1;
            if consecutive == retries {
                outages += 1;
                consecutive = 0;
            }
        }
    }
    outages
}

fn main() {
    // A cellular block: wake-up delays plus occasional disconnect
    // episodes whose responses arrive very late — but always arrive.
    let mut world = World::new(0xca11);
    world.add_block(
        0x0a0000,
        Arc::new(BlockProfile {
            base_rtt: Dist::LogNormal { median: 0.25, sigma: 0.3 },
            jitter: Dist::Exponential { mean: 0.1 },
            density: 0.5,
            response_prob: 1.0, // nothing is ever lost in this demo
            error_prob: 0.0,
            dup_prob: 0.0,
            wakeup: Some(WakeupCfg { host_prob: 1.0, ..Default::default() }),
            // Short disconnect episodes: responses delayed up to ~50 s,
            // never lost — within the 60 s listen window, far beyond 3 s.
            episodes: Some(EpisodeCfg {
                host_prob: 0.3,
                duration: Dist::LogNormal { median: 25.0, sigma: 0.4 },
                max_duration_secs: 50.0,
                buffer_prob: 1.0,
                buffer_cap: 500,
                ..Default::default()
            }),
            ..Default::default()
        }),
    );

    // Monitor 40 live hosts: one ping every 10 s for ~3 hours each.
    let targets: Vec<u32> =
        (0u32..256).map(|o| 0x0a000000 + o).filter(|&a| world.is_live(a)).take(40).collect();
    let jobs: Vec<PingJob> = targets
        .iter()
        .enumerate()
        .map(|(i, &dst)| PingJob::train(dst, PingProto::Icmp, 1000, 10.0, i as f64 * 0.2))
        .collect();
    let (results, _) = ScamperCfg { prober_addr: 0xC0000207, seed: 1, grace_secs: 600.0 }
        .build(jobs)
        .run(&mut world);

    println!("monitoring {} always-up cellular hosts, 1,000 pings each:\n", targets.len());
    for (timeout, label) in [(3.0, "conventional 3 s"), (60.0, "paper-recommended 60 s")] {
        let outages: usize = results.iter().map(|r| false_outages(&r.rtts, timeout, 3)).sum();
        let affected = results.iter().filter(|r| false_outages(&r.rtts, timeout, 3) > 0).count();
        println!(
            "timeout = {label:<24} → {outages:>4} FALSE outage declarations across \
             {affected:>2} hosts"
        );
    }
    println!(
        "\nevery host answered every ping eventually — the 3 s monitor manufactured \
         outages out of latency. 'Too short a timeout risks confusing congestion or \
         other delay with an outage.'"
    );
}
