//! Quickstart: the five-minute tour of the `beware` stack.
//!
//! Builds a small simulated Internet, runs an ISI-style survey over it,
//! recovers delayed responses, filters artifacts, and asks the question
//! the paper answers: *what timeout should my prober use?*
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::recommend;
use beware::analysis::timeout_table::TimeoutTable;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;

fn main() {
    // 1. A synthetic Internet, 2015 vintage: cellular carriers, satellite
    //    ISPs, broadband bulk — the mix the paper measured.
    let scenario = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 42,
        total_blocks: 256,
        vantage: VANTAGES[0], // Marina del Rey, like ISI's `w` site
    });
    println!(
        "generated Internet: {} ASes, {} /24 blocks, {} addresses",
        scenario.plan.registry.len(),
        scenario.plan.block_count(),
        scenario.plan.address_count()
    );

    // 2. An ISI-style survey: every address of each block, once per
    //    11-minute round, responses matched within 3 seconds.
    // Sample blocks across the whole plan (taking the head would bias the
    // sample toward the first ASes in the registry).
    let blocks: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).step_by(4).take(64).collect();
    let cfg = SurveyCfg { blocks, rounds: 30, ..Default::default() };
    let world = scenario.build_world();
    let mut world = world;
    let ((records, stats), summary) = cfg.build(Vec::new()).run(&mut world);
    println!(
        "survey: {} probes, {:.1}% answered in-window, {} late/unmatched responses \
         ({} simulated events)",
        stats.probes(),
        100.0 * stats.response_rate(),
        stats.unmatched,
        summary.events
    );

    // 3. The paper's analysis: recover the late responses, drop broadcast
    //    and DoS artifacts.
    let out = run_pipeline(&records, &PipelineCfg::default());
    println!(
        "pipeline: +{} recovered delayed responses; filtered {} broadcast responders, \
         {} reflectors",
        out.accounting.naive_matching.packets - out.accounting.survey_detected.packets,
        out.broadcast_responders.len(),
        out.duplicate_offenders.len()
    );

    // 4. Table 2 in one line each: the timeout needed per coverage target.
    if let Some(table) = TimeoutTable::compute(&out.samples) {
        println!("\n{}", table.render("minimum timeout (s) per coverage target"));
    }

    // 5. The practitioner's question.
    for (a, p) in [(95.0, 95.0), (98.0, 98.0), (99.0, 99.0)] {
        if let Some(rec) = recommend::recommend_timeout(&out.samples, a, p) {
            println!(
                "to capture {p}% of pings from {a}% of addresses, wait {:.2} s",
                rec.timeout_secs
            );
        }
    }
    let false_loss = recommend::addresses_with_false_loss_above(&out.samples, 3.0, 0.05);
    println!(
        "\nwith the conventional 3 s timeout, {:.1}% of addresses would show a false \
         loss rate of 5% or more — the paper's warning, reproduced.",
        100.0 * false_loss
    );
}
