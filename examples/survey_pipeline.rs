//! The full survey analysis pipeline, narrated step by step — the
//! reproduction of Sections 3 and 4 of the paper on one simulated survey,
//! including the Figure 4 broadcast false-match story.
//!
//! ```sh
//! cargo run --release --example survey_pipeline
//! ```

use beware::analysis::filters::broadcast::BroadcastFilterCfg;
use beware::analysis::matching::match_unmatched;
use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::report::fmt_count;
use beware::analysis::timeout_table::TimeoutTable;
use beware::dataset::binfmt;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;

fn main() {
    let scenario = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 0xbe11,
        total_blocks: 192,
        vantage: VANTAGES[1], // Ft. Collins, the `c` site
    });
    let blocks: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).collect();
    let cfg = SurveyCfg { blocks, rounds: 40, ..Default::default() };

    println!("== step 1: probe ==");
    let mut world = scenario.build_world();
    let ((records, stats), _) = cfg.build(Vec::new()).run(&mut world);
    println!(
        "{} records: {} matched (µs RTTs), {} timeouts, {} unmatched responses, {} errors",
        fmt_count(records.len() as u64),
        fmt_count(stats.matched),
        fmt_count(stats.timeouts),
        fmt_count(stats.unmatched),
        stats.errors
    );

    println!("\n== step 2: persist (the dataset is just bytes) ==");
    let mut bytes = Vec::new();
    binfmt::write_records(&mut bytes, &records).expect("in-memory write");
    println!(
        "binary survey: {} bytes ({:.1} B/record); re-read identical: {}",
        fmt_count(bytes.len() as u64),
        bytes.len() as f64 / records.len() as f64,
        binfmt::read_records(&mut &bytes[..]).expect("read back") == records
    );

    println!("\n== step 3: recover delayed responses (source-address matching) ==");
    let outcome = match_unmatched(&records);
    println!(
        "{} unmatched responses matched to timed-out probes; {} leftovers (duplicates)",
        fmt_count(outcome.delayed.len() as u64),
        fmt_count(outcome.leftovers.len() as u64)
    );
    // Show the Figure 4 artifact live: stable ~330 s latencies.
    let artifacts = outcome.delayed.iter().filter(|d| (328..=332).contains(&d.latency_s)).count();
    println!("of these, {artifacts} carry the suspicious ~330 s broadcast signature");

    println!("\n== step 4: filter artifacts ==");
    let out = run_pipeline(&records, &PipelineCfg::default());
    println!(
        "EWMA broadcast filter (alpha = {}): marked {} source addresses",
        BroadcastFilterCfg::default().alpha,
        out.broadcast_responders.len()
    );
    println!(
        "duplicate filter (>4 responses/request): discarded {} addresses (max flood {})",
        out.duplicate_offenders.len(),
        out.max_responses.values().max().copied().unwrap_or(0)
    );

    println!("\n== step 5: the timeout table ==");
    let table = TimeoutTable::compute(&out.samples).expect("non-empty survey");
    println!("{}", table.render("minimum timeout (s): c% of pings from r% of addresses"));
    println!(
        "the paper's conclusion: probe like TCP — retransmit at 3 s but KEEP LISTENING. \
         A 60 s wait covers the 98/98 cell above ({} s); the extreme 99/99 tail ({} s) \
         is the cost of calling an outage early.",
        table.cell(98.0, 98.0).unwrap().round(),
        table.cell(99.0, 99.0).unwrap().round()
    );
}
