//! Timeout oracle, in process: build a snapshot from a simulated survey
//! and answer "what timeout for this address?" without a socket.
//!
//! The same [`beware::serve::Oracle`] powers the `beware serve` daemon;
//! embedding it directly gives a prober library the paper's per-prefix
//! recommendations with one function call — and the answers are
//! bit-identical to both the daemon's and the offline
//! `recommend_timeout`.
//!
//! ```sh
//! cargo run --release --example timeout_oracle
//! ```

use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::recommend::recommend_timeout;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;
use beware::serve::{build_snapshot, Oracle, SnapshotCfg, Status};

fn main() {
    // 1. Survey a small simulated Internet and run the paper's analysis
    //    pipeline to get filtered per-address latency samples.
    let scenario = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 42,
        total_blocks: 128,
        vantage: VANTAGES[0],
    });
    let blocks: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).step_by(3).take(24).collect();
    let cfg = SurveyCfg { blocks, rounds: 20, ..Default::default() };
    let mut world = scenario.build_world();
    let ((records, stats), _) = cfg.build(Vec::new()).run(&mut world);
    let out = run_pipeline(&records, &PipelineCfg::default());
    println!(
        "survey: {} probes, {:.1}% matched; {} addresses with samples",
        stats.probes(),
        100.0 * stats.response_rate(),
        out.samples.len()
    );

    // 2. Compile the samples into per-/24 timeout tables plus a global
    //    fallback — the same snapshot `beware serve` loads at startup.
    let snap = build_snapshot(&out.samples, &SnapshotCfg::default()).expect("usable samples");
    println!(
        "snapshot: {} per-prefix tables over a {}x{} coverage grid",
        snap.entries.len(),
        snap.address_pct_tenths.len(),
        snap.ping_pct_tenths.len()
    );

    // 3. Load it into an in-process oracle and query it directly.
    let oracle = Oracle::from_snapshot(snap.clone()).expect("canonical snapshot");
    let covered = snap.entries[0].prefix | 1; // an address inside a surveyed /24
    let stranger = 0xc633_6401; // 198.51.100.1 — never surveyed
    for (label, addr) in [("covered address", covered), ("unknown address", stranger)] {
        let ans = oracle.lookup(addr, 950, 950).expect("95% is in the grid");
        let source = match ans.status {
            Status::Exact => {
                format!("its own {}/{} table", std::net::Ipv4Addr::from(ans.prefix), ans.prefix_len)
            }
            Status::Fallback => "the global fallback".to_string(),
        };
        println!(
            "{label} {}: wait {:.3} s to catch 95% of pings from 95% of addresses ({source})",
            std::net::Ipv4Addr::from(addr),
            ans.timeout_secs()
        );
    }

    // 4. The oracle's fallback answer is the offline recommendation, bit
    //    for bit.
    let offline = recommend_timeout(&out.samples, 95.0, 95.0).expect("usable samples");
    let served = oracle.lookup(stranger, 950, 950).unwrap();
    assert_eq!(served.timeout_bits, offline.timeout_secs.to_bits());
    println!(
        "oracle and offline analysis agree exactly: {:.6} s (same f64 bits)",
        offline.timeout_secs
    );
}
