//! An Internet-wide stateless scan and the turtle attribution of
//! Section 6.2: which Autonomous Systems and continents hold the
//! high-latency addresses?
//!
//! ```sh
//! cargo run --release --example zmap_scan
//! ```

use beware::analysis::broadcast_octets::zmap_broadcast_octets;
use beware::analysis::turtles::{rank_ases, rank_continents, turtle_fraction};
use beware::dataset::ScanMeta;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;

fn main() {
    let scenario = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 0x5ca4,
        total_blocks: 384,
        vantage: VANTAGES[0],
    });
    let db = scenario.db();

    // Scan the full simulated space, stateless: destination and send time
    // ride in the echo payload, exactly like the authors' zmap extension.
    let cfg = ZmapCfg {
        blocks: scenario.plan.blocks().map(|(b, _)| b).collect(),
        duration_secs: 1800.0,
        cooldown_secs: 240.0,
        ..Default::default()
    };
    let meta = ScanMeta { label: "demo scan".into(), day: "Thu".into(), begin: "12:00".into() };
    let mut world = scenario.build_world();
    let (scan, summary) = cfg.build(meta).run(&mut world);
    println!(
        "scan: {} probes sent, {} echo responses, {} distinct responders",
        summary.packets_sent,
        scan.response_count(),
        scan.responder_count()
    );
    println!(
        "turtles (>1 s): {:.2}% of responders; sleepy turtles (>100 s): {:.3}%",
        100.0 * turtle_fraction(&scan, 1.0),
        100.0 * turtle_fraction(&scan, 100.0)
    );

    // Broadcast responders expose themselves by answering from a
    // different address than the one probed.
    let hist = zmap_broadcast_octets(&scan);
    println!(
        "broadcast-triggering destinations: {} (top octet spikes: .255 x{}, .0 x{}, .127 x{})",
        hist.total(),
        hist.counts[255],
        hist.counts[0],
        hist.counts[127]
    );

    // Attribute the turtles.
    println!("\ntop Autonomous Systems by addresses with RTT > 1 s:");
    for r in rank_ases(std::slice::from_ref(&scan), &db, 1.0).iter().take(8) {
        println!(
            "  {:<9} {:<28} [{}] {:>5} turtles ({:.1}% of its responders)",
            r.asn.to_string(),
            r.name,
            r.kind.label(),
            r.total_turtles,
            r.per_scan[0].percent()
        );
    }
    println!("\nby continent:");
    for c in rank_continents(&[scan], &db, 1.0) {
        println!(
            "  {:<14} {:>5} turtles ({:.1}% of its responders)",
            c.continent.to_string(),
            c.total_turtles,
            c.per_scan[0].percent()
        );
    }
    println!("\nthe paper's finding, reproduced: the turtle ranking is a cellular-carrier roster.");
}
