//! `beware` — command-line front end to the reproduction stack.
//!
//! ```text
//! beware generate  --blocks 1024 --year 2015 --seed 7 --out plan.tsv
//! beware survey    --plan plan.tsv --rounds 60 --out survey.bwss [--sample N]
//! beware scan      --plan plan.tsv --duration 1800 --out scan.tsv
//! beware analyze   --survey survey.bwss [--csv cdf.csv]
//! beware recommend --survey survey.bwss [--addr-pct 95] [--ping-pct 95] [--timeout 3]
//! ```
//!
//! Argument parsing is deliberately dependency-free: flags are `--name
//! value` pairs, orders don't matter, unknown flags are errors.

use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::recommend;
use beware::analysis::report::{fmt_count, series_to_csv, Series};
use beware::analysis::timeout_table::TimeoutTable;
use beware::analysis::Cdf;
use beware::asdb::gen::{GenConfig, InternetPlan};
use beware::asdb::persist;
use beware::bench::{ExperimentCtx, FullSpaceCfg, Scale};
use beware::dataset::stream::{StreamReader, StreamWriter};
use beware::dataset::{Record, ScanMeta};
use beware::faultsim::{ChaosProxy, FaultCfg};
use beware::netsim::scenario::{vantage, Scenario, ScenarioCfg};
use beware::netsim::{LinkEvent, LinkEventKind, LinkId};
use beware::policy::{shootout, PolicyKind, ShootoutCfg};
use beware::probe::census::select_survey_blocks;
use beware::probe::prelude::*;
use beware::serve::{
    build_snapshot, loadgen, server, Client, ClientError, Oracle, ReloadKind, SnapshotCfg, Status,
};
use beware::telemetry::Registry;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// A classified CLI failure. The variant picks the process exit code, so
/// scripts (and the CI reload smoke job) can tell a typo'd flag from a
/// missing file from a corrupt snapshot without parsing stderr:
///
/// * `Usage`   → exit 2 (bad flags, bad values, invalid server config)
/// * `Io`      → exit 3 (missing/unreadable/unwritable files)
/// * `Corrupt` → exit 4 (snapshot/delta decode or validation failures)
/// * `Other`   → exit 1 (everything else)
#[derive(Debug)]
enum CliError {
    Usage(String),
    Io(String),
    Corrupt(String),
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
        })
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(m) => write!(f, "{m}"),
            CliError::Corrupt(m) => write!(f, "{m}"),
            CliError::Other(m) => write!(f, "{m}"),
        }
    }
}

/// Legacy plumbing: unclassified `String` errors stay exit 1.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Other(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Other(m.to_string())
    }
}

/// Rejected server configuration is a usage error: the flags asked for
/// something the server refuses to run with.
impl From<server::ConfigError> for CliError {
    fn from(e: server::ConfigError) -> Self {
        CliError::Usage(e.to_string())
    }
}

/// Classify a snapshot/delta decode failure: transport problems are I/O,
/// everything else means the bytes themselves are bad.
fn decode_err(path: &str, e: beware::dataset::binfmt::DecodeError) -> CliError {
    use beware::dataset::binfmt::DecodeError as E;
    match e {
        E::Io(e) => CliError::Io(format!("reading {path}: {e}")),
        other => CliError::Corrupt(format!("decoding {path}: {other}")),
    }
}

/// Same classification for survey stream decode failures.
fn stream_err(path: &str, e: beware::dataset::stream::StreamError) -> CliError {
    use beware::dataset::stream::StreamError as E;
    match e {
        E::Io(e) => CliError::Io(format!("reading {path}: {e}")),
        other => CliError::Corrupt(format!("decoding {path}: {other}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "campaign" => cmd_campaign(&flags),
        "survey" => cmd_survey(&flags),
        "scan" => cmd_scan(&flags),
        "census" => cmd_census(&flags),
        "analyze" => cmd_analyze(&flags),
        "metrics" => cmd_metrics(&flags),
        "recommend" => cmd_recommend(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "admin" => cmd_admin(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "shootout" => cmd_shootout(&flags),
        "fullspace" => cmd_fullspace(&flags),
        "simserve" => cmd_simserve(&flags),
        "chaos" => cmd_chaos(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

const USAGE: &str = "beware — 'Timeouts: Beware Surprisingly High Delay' toolkit

commands:
  generate   --blocks N --year Y --seed S --out plan.tsv
  campaign   --out DIR [--threads N] [--scale small|bench] [--blocks N]
             [--survey-blocks N] [--rounds R] [--scans N] [--seed S]
             [--metrics metrics.json]
  survey     --plan plan.tsv --rounds R [--sample N] [--seed S] [--vantage w|c|j|g] --out survey.bwss
  scan       --plan plan.tsv [--duration SECS] [--seed S] --out scan.tsv
  census     --plan plan.tsv [--count N] [--seed S] --out blocks.txt
  analyze    --survey survey.bwss [--csv cdf.csv]
  metrics    --in metrics.json
  recommend  --survey survey.bwss [--addr-pct P] [--ping-pct P] [--timeout T]
  serve      --snapshot snap.bwts | --survey survey.bwss [--prefix-len L] [--min-addrs N]
             [--bind ADDR] [--port P] [--shards N] [--read-timeout SECS]
             [--policy NAME] (answer from an online estimator fed by Report frames;
             see `shootout --list-policies`; `oracle` = snapshot mode)
             [--reload-from snap.bwts [--reload-poll SECS]]
             [--save-snapshot snap.bwts] [--metrics serve-metrics.json]
  query      --host ADDR:PORT [--addr A.B.C.D] [--addr-pct P] [--ping-pct P]
             [--op query|stats|shutdown]
  admin      --op info                   --host ADDR:PORT
             --op reload [--kind full|delta] --host ADDR:PORT
             --op diff --base old.bwts --target new.bwts --out delta.bwtd
  loadgen    --host ADDR:PORT [--snapshot snap.bwts] [--workers N] [--requests N]
             [--addr-pct P] [--ping-pct P] [--seed S] [--report-rtts] [--out BENCH_3.json]
             mass mode (in-process server, idle-pool sweep -> BENCH_4.json):
             --conns N [--hot-workers N] [--shards N] [--idle-settle SECS]
             [--requests N] [--seed S] [--out BENCH_4.json]
             reload mode (in-process server, hot reloads under load -> BENCH_5.json):
             --reload-bench N [--workers N] [--shards N] [--gap-ms MS]
             [--cooldown-ms MS] [--seed S] [--out BENCH_5.json]
  shootout   [--blocks N] [--rounds R] [--round-secs SECS] [--seed S] [--threads N]
             [--addr-pct P] [--ping-pct P] [--penalty SECS] [--out BENCH_6.json]
             [--metrics shootout-metrics.json] | --list-policies
  fullspace  [--bits N] [--base A.B.C.D] [--blocks N] [--year Y] [--seed S]
             [--vantage w|c|j|g] [--threads N] [--lazy-hosts CAP] [--quiescence SECS]
             [--probe-ns NS] [--chunk-bits N] [--out summary.json] [--bench BENCH_7.json]
             [--event kind:tier:id:from:until[:scale]]  (e.g. degrade:access:0x0100:10:60:0.01,
             partition:core:64512:30:inf; tiers: access=/16 idx, core=ASN, spine=continent)
  simserve   [--clients N] [--queries N] [--cell-bits B] [--seed S]
             [--regime steady|covid_step|diurnal_drift] [--partition]
             [--interval-us U] [--threads N] [--policy NAME]
             [--out summary.json] [--bench BENCH_8.json]
             (oracle server + N closed-loop clients inside the netsim;
             summary is byte-identical across --threads and repeat runs)
  chaos      [--snapshot snap.bwts | --survey survey.bwss] [--seed S]
             [--profile chaos|split|off] [--workers N] [--requests N]
             [--shards N] [--metrics chaos-metrics.json]

exit codes: 0 ok | 1 runtime failure | 2 usage/config | 3 file I/O | 4 corrupt snapshot";

/// Flags that are pure switches: present means `true`, no value token.
const SWITCH_FLAGS: &[&str] = &["list-policies", "report-rtts", "partition"];

/// Parsed `--name value` flags.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
            if SWITCH_FLAGS.contains(&name) {
                map.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags(map))
    }

    fn str(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.str(name).ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.str(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::Usage(format!("bad value for --{name}: `{v}`")))
            }
        }
    }
}

fn load_plan(flags: &Flags) -> Result<InternetPlan, CliError> {
    let path = flags.required("plan")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    persist::load(&text).map_err(|e| CliError::Corrupt(format!("parsing {path}: {e}")))
}

fn scenario_from(flags: &Flags, plan: InternetPlan) -> Result<Scenario, CliError> {
    let code = flags.str("vantage").unwrap_or("w");
    let v =
        code.chars().next().and_then(vantage).ok_or_else(|| {
            CliError::Usage(format!("unknown vantage `{code}` (use w, c, j or g)"))
        })?;
    let seed = flags.num("seed", 7u64)?;
    Ok(Scenario::from_plan(
        ScenarioCfg { year: plan.year, seed, total_blocks: 0, vantage: v },
        plan,
    ))
}

fn cmd_generate(flags: &Flags) -> Result<(), CliError> {
    let cfg = GenConfig {
        year: flags.num("year", 2015u16)?,
        seed: flags.num("seed", 7u64)?,
        total_blocks: flags.num("blocks", 1024u32)?,
    };
    let plan = InternetPlan::generate(&cfg);
    let out = flags.required("out")?;
    std::fs::write(out, persist::save(&plan)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "generated {}-block Internet for {} ({} ASes, {} addresses) -> {out}",
        plan.block_count(),
        plan.year,
        plan.registry.len(),
        fmt_count(plan.address_count())
    );
    Ok(())
}

/// Run the full shared campaign (two surveys + pipelines + the zmap scan
/// campaign) on a worker pool and write the datasets plus a summary
/// report. The written files — including the `--metrics` telemetry JSON —
/// are byte-identical for any `--threads` value: the fan-out is
/// deterministic (see `beware::netsim::exec`) and per-task metrics merge
/// in fixed task order.
fn cmd_campaign(flags: &Flags) -> Result<(), CliError> {
    let mut scale = match flags.str("scale").unwrap_or("small") {
        "small" => Scale::small(),
        "bench" => Scale::bench(),
        other => {
            return Err(CliError::Usage(format!("unknown scale `{other}` (use small or bench)")))
        }
    };
    scale.internet_blocks = flags.num("blocks", scale.internet_blocks)?;
    scale.survey_blocks = flags.num("survey-blocks", scale.survey_blocks)?;
    scale.survey_rounds = flags.num("rounds", scale.survey_rounds)?;
    scale.zmap_scans = flags.num("scans", scale.zmap_scans)?;
    scale.seed = flags.num("seed", scale.seed)?;
    let threads: usize = flags.num("threads", beware::netsim::default_threads())?;
    let out_dir = std::path::Path::new(flags.required("out")?);
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    let metrics_path = flags.str("metrics");
    let t0 = std::time::Instant::now();
    let mut metrics = if metrics_path.is_some() { Registry::new() } else { Registry::disabled() };
    let ctx = ExperimentCtx::build_with_metrics(scale, threads, &mut metrics);

    for survey in [&ctx.survey_w, &ctx.survey_c] {
        let name = format!("survey_{}.bwss", survey.meta.vantage);
        let path = out_dir.join(&name);
        let file = File::create(&path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        let mut writer = StreamWriter::new(BufWriter::new(file)).map_err(|e| e.to_string())?;
        for r in &survey.records {
            beware::dataset::RecordSink::push(&mut writer, *r);
        }
        writer.finish().map_err(|e| e.to_string())?;
    }
    for (i, scan) in ctx.scans.iter().enumerate() {
        let path = out_dir.join(format!("scan_{i:02}.tsv"));
        let mut w = BufWriter::new(File::create(&path).map_err(|e| e.to_string())?);
        writeln!(w, "probed\tresponder\trtt_us").map_err(|e| e.to_string())?;
        for r in &scan.records {
            writeln!(w, "{}\t{}\t{}", r.probed, r.responder, r.rtt_us)
                .map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
    }

    // The report carries only simulation-derived numbers — nothing about
    // wall-clock or thread count — so it byte-compares across runs.
    let mut report = String::new();
    report.push_str(&format!(
        "campaign seed {} | {} blocks | {} survey blocks x {} rounds | {} scans\n\n",
        scale.seed,
        scale.internet_blocks,
        scale.survey_blocks,
        scale.survey_rounds,
        scale.zmap_scans,
    ));
    for (survey, pipe) in [(&ctx.survey_w, &ctx.pipeline_w), (&ctx.survey_c, &ctx.pipeline_c)] {
        let acc = pipe.accounting;
        report.push_str(&format!(
            "{}: {} probes, {:.2}% matched, {} unmatched responses\n  \
             survey-detected {}/{} | naive {}/{} | broadcast -{}/{} | dup -{}/{} | final {}/{}\n",
            survey.meta.display_name(),
            survey.stats.probes(),
            100.0 * survey.stats.response_rate(),
            survey.stats.unmatched,
            acc.survey_detected.packets,
            acc.survey_detected.addresses,
            acc.naive_matching.packets,
            acc.naive_matching.addresses,
            acc.broadcast_responses.packets,
            acc.broadcast_responses.addresses,
            acc.duplicate_responses.packets,
            acc.duplicate_responses.addresses,
            acc.survey_plus_delayed.packets,
            acc.survey_plus_delayed.addresses,
        ));
    }
    report.push('\n');
    if let Some(table) = TimeoutTable::compute(&ctx.combined_samples) {
        report.push_str(&table.render("minimum timeout (s): c% of pings from r% of addresses"));
    }
    report.push('\n');
    for (i, scan) in ctx.scans.iter().enumerate() {
        report.push_str(&format!(
            "scan {i:02} [{} {} {}]: {} responses from {} responders\n",
            scan.meta.label,
            scan.meta.day,
            scan.meta.begin,
            scan.response_count(),
            scan.responder_count(),
        ));
    }
    let report_path = out_dir.join("report.txt");
    std::fs::write(&report_path, report).map_err(|e| e.to_string())?;

    if let Some(path) = metrics_path {
        // No wall-clock here: walltime/ metrics are excluded from the
        // JSON export anyway, so the file stays deterministic.
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("telemetry -> {path} ({} metrics)", metrics.len());
    }

    println!(
        "campaign complete on {threads} thread(s) in {:?}: 2 surveys ({} + {} records), \
         {} scans -> {}",
        t0.elapsed(),
        ctx.survey_w.records.len(),
        ctx.survey_c.records.len(),
        ctx.scans.len(),
        out_dir.display(),
    );
    Ok(())
}

fn cmd_survey(flags: &Flags) -> Result<(), CliError> {
    let plan = load_plan(flags)?;
    let scenario = scenario_from(flags, plan)?;
    let all: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).collect();
    let sample: usize = flags.num("sample", all.len())?;
    let sample = sample.clamp(1, all.len());
    // Spread the sample across the plan — taking the head would bias it
    // toward whichever ASes the registry lists first.
    let stride = (all.len() / sample).max(1);
    let blocks: Vec<u32> = all.into_iter().step_by(stride).take(sample).collect();
    let cfg = SurveyCfg {
        blocks,
        rounds: flags.num("rounds", 40u32)?,
        seed: flags.num("seed", 7u64)?,
        ..Default::default()
    };
    let out_path = flags.required("out")?;
    let file = File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    let writer = StreamWriter::new(BufWriter::new(file)).map_err(|e| e.to_string())?;
    let mut world = scenario.build_world();
    let ((writer, stats), summary) = cfg.build(writer).run(&mut world);
    let inner = writer.finish().map_err(|e| e.to_string())?;
    inner.into_inner().map_err(|e| e.to_string())?.sync_all().map_err(|e| e.to_string())?;
    println!(
        "survey complete: {} probes, {:.1}% matched, {} unmatched responses, {} sim events -> {out_path}",
        fmt_count(stats.probes()),
        100.0 * stats.response_rate(),
        fmt_count(stats.unmatched),
        fmt_count(summary.events)
    );
    Ok(())
}

fn cmd_scan(flags: &Flags) -> Result<(), CliError> {
    let plan = load_plan(flags)?;
    let scenario = scenario_from(flags, plan)?;
    let cfg = ZmapCfg {
        blocks: scenario.plan.blocks().map(|(b, _)| b).collect(),
        duration_secs: flags.num("duration", 1800.0f64)?,
        seed: flags.num("seed", 7u64)?,
        ..Default::default()
    };
    let meta = ScanMeta { label: "cli scan".into(), day: "-".into(), begin: "-".into() };
    let mut world = scenario.build_world();
    let (scan, summary) = cfg.build(meta).run(&mut world);
    let out = flags.required("out")?;
    let mut w = BufWriter::new(File::create(out).map_err(|e| e.to_string())?);
    writeln!(w, "probed,responder,rtt_us").map_err(|e| e.to_string())?;
    for r in &scan.records {
        writeln!(
            w,
            "{},{},{}",
            std::net::Ipv4Addr::from(r.probed),
            std::net::Ipv4Addr::from(r.responder),
            r.rtt_us
        )
        .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!(
        "scan complete: {} probes, {} responses, {} responders -> {out}",
        fmt_count(summary.packets_sent),
        fmt_count(scan.response_count() as u64),
        fmt_count(scan.responder_count() as u64)
    );
    Ok(())
}

fn cmd_census(flags: &Flags) -> Result<(), CliError> {
    let plan = load_plan(flags)?;
    let scenario = scenario_from(flags, plan)?;
    let cfg = CensusCfg {
        blocks: scenario.plan.blocks().map(|(b, _)| b).collect(),
        duration_secs: flags.num("duration", 600.0f64)?,
        seed: flags.num("seed", 7u64)?,
        ..Default::default()
    };
    let mut world = scenario.build_world();
    let (result, _) = cfg.build().run(&mut world);
    let count: usize = flags.num("count", 64usize)?;
    let blocks = select_survey_blocks(&result, &[], count, flags.num("seed", 7u64)?);
    let out = flags.required("out")?;
    let mut text = String::new();
    for b in &blocks {
        text.push_str(&format!("{}/24\n", std::net::Ipv4Addr::from(b << 8)));
    }
    std::fs::write(out, text).map_err(|e| e.to_string())?;
    println!(
        "census: {:.0}% of {} blocks responsive; selected {} survey blocks -> {out}",
        100.0 * result.responsive_fraction(),
        result.responders.len(),
        blocks.len()
    );
    Ok(())
}

fn read_survey(flags: &Flags) -> Result<Vec<Record>, CliError> {
    let path = flags.required("survey")?;
    let file = File::open(path).map_err(|e| CliError::Io(format!("opening {path}: {e}")))?;
    let reader = StreamReader::new(BufReader::new(file)).map_err(|e| stream_err(path, e))?;
    reader.collect::<Result<Vec<Record>, _>>().map_err(|e| stream_err(path, e))
}

fn cmd_analyze(flags: &Flags) -> Result<(), CliError> {
    let records = read_survey(flags)?;
    let out = run_pipeline(&records, &PipelineCfg::default());
    let acc = out.accounting;
    println!("records: {}", fmt_count(records.len() as u64));
    println!(
        "survey-detected: {} packets / {} addresses",
        fmt_count(acc.survey_detected.packets),
        fmt_count(acc.survey_detected.addresses)
    );
    println!(
        "recovered delayed responses: {}",
        fmt_count(acc.naive_matching.packets - acc.survey_detected.packets)
    );
    println!(
        "filtered: {} broadcast responders, {} duplicate offenders",
        fmt_count(acc.broadcast_responses.addresses),
        fmt_count(acc.duplicate_responses.addresses)
    );
    let Some(table) = TimeoutTable::compute(&out.samples) else {
        return Err("no usable samples in survey".into());
    };
    println!("\n{}", table.render("minimum timeout (s): c% of pings from r% of addresses"));
    if let Some(csv) = flags.str("csv") {
        let p99: Vec<f64> = out.samples.values().filter_map(|s| s.percentile(99.0)).collect();
        let series = Series::new("p99_per_address", Cdf::new(p99).to_series(400));
        std::fs::write(csv, series_to_csv(&[series])).map_err(|e| e.to_string())?;
        println!("wrote per-address p99 CDF to {csv}");
    }
    Ok(())
}

/// Pretty-print a telemetry JSON file written by `campaign --metrics`.
fn cmd_metrics(flags: &Flags) -> Result<(), CliError> {
    let path = flags.required("in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let reg = Registry::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    print!("{}", reg.render_text());
    Ok(())
}

fn cmd_recommend(flags: &Flags) -> Result<(), CliError> {
    let records = read_survey(flags)?;
    let out = run_pipeline(&records, &PipelineCfg::default());
    let addr_pct: f64 = flags.num("addr-pct", 95.0)?;
    let ping_pct: f64 = flags.num("ping-pct", 95.0)?;
    let timeout: f64 = flags.num("timeout", 3.0)?;
    let rec = recommend::recommend_timeout(&out.samples, addr_pct, ping_pct)
        .ok_or("no usable samples in survey")?;
    println!(
        "to capture {ping_pct}% of pings from {addr_pct}% of addresses: wait {:.2} s \
         (evidence: {} addresses)",
        rec.timeout_secs, rec.addresses
    );
    let frac = recommend::addresses_with_false_loss_above(&out.samples, timeout, 0.05);
    println!(
        "a {timeout} s timeout would impose a false loss rate of ≥5% on {:.2}% of addresses",
        100.0 * frac
    );
    Ok(())
}

/// Parse a `--addr-pct`-style flag (percent, possibly fractional like
/// `99.9`) into the protocol's tenths-of-a-percent representation.
fn pct_tenths(flags: &Flags, name: &str, default: u16) -> Result<u16, CliError> {
    match flags.str(name) {
        None => Ok(default),
        Some(v) => {
            let pct: f64 = v.parse().map_err(|_| format!("bad value for --{name}: `{v}`"))?;
            let tenths = (pct * 10.0).round();
            if !(1.0..=1000.0).contains(&tenths) {
                return Err(CliError::Usage(format!("--{name} must be in (0, 100], got {v}")));
            }
            Ok(tenths as u16)
        }
    }
}

/// Load a snapshot from `--snapshot FILE`, or build one from
/// `--survey FILE` via the analysis pipeline.
fn load_or_build_snapshot(flags: &Flags) -> Result<beware::dataset::TimeoutSnapshot, CliError> {
    if let Some(path) = flags.str("snapshot") {
        let file = File::open(path).map_err(|e| CliError::Io(format!("opening {path}: {e}")))?;
        return beware::dataset::snapshot::read_snapshot(&mut BufReader::new(file))
            .map_err(|e| decode_err(path, e));
    }
    if flags.str("survey").is_none() {
        return Err(CliError::Usage("need --snapshot FILE or --survey FILE".into()));
    }
    let records = read_survey(flags)?;
    let out = run_pipeline(&records, &PipelineCfg::default());
    let cfg = SnapshotCfg {
        prefix_len: flags.num("prefix-len", 24u8)?,
        min_addresses: flags.num("min-addrs", 1usize)?,
        ..Default::default()
    };
    build_snapshot(&out.samples, &cfg).map_err(|e| CliError::Other(e.to_string()))
}

/// Built-in fixture snapshot: a small simulated campaign, so self-hosted
/// commands (`chaos`, `loadgen --conns`) work with no input files — the
/// oracle's content only has to be non-trivial and offline-recomputable.
fn builtin_snapshot() -> Result<beware::dataset::TimeoutSnapshot, CliError> {
    builtin_snapshot_gen(0)
}

/// Generation `gen` of the built-in snapshot: the same simulated
/// Internet surveyed with a different probe seed, so successive
/// generations share most prefixes but differ in their timeout cells —
/// exactly the shape a periodic re-survey produces, and what the
/// reload benchmark swaps between.
fn builtin_snapshot_gen(gen: u64) -> Result<beware::dataset::TimeoutSnapshot, CliError> {
    let sc = Scenario::new(ScenarioCfg {
        year: 2015,
        seed: 11,
        total_blocks: 48,
        vantage: vantage('w').expect("built-in vantage"),
    });
    let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).take(12).collect();
    let cfg = SurveyCfg { blocks, rounds: 10, seed: 11 + 13 * gen, ..Default::default() };
    let mut world = sc.build_world();
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut world);
    let samples = run_pipeline(&records, &PipelineCfg::default()).samples;
    build_snapshot(&samples, &SnapshotCfg::default()).map_err(|e| e.to_string().into())
}

fn parse_host(flags: &Flags) -> Result<SocketAddr, CliError> {
    let host = flags.str("host").unwrap_or("127.0.0.1:4615");
    host.parse().map_err(|_| CliError::Usage(format!("bad --host `{host}` (expected ADDR:PORT)")))
}

fn connect(flags: &Flags) -> Result<Client, CliError> {
    let addr = parse_host(flags)?;
    Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2))
        .map_err(|e| CliError::Other(format!("connecting to {addr}: {e}")))
}

/// Run the timeout-oracle daemon until a shutdown frame arrives.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    // Validate the server configuration before any expensive input work,
    // so flag mistakes surface as usage errors no matter what the
    // snapshot flags point at.
    let bind = flags.str("bind").unwrap_or("127.0.0.1");
    let port: u16 = flags.num("port", 4615u16)?;
    let metrics_path = flags.str("metrics");
    let mut builder = server::ServerCfg::builder()
        .shards(flags.num("shards", beware::netsim::default_threads())?)
        .idle_timeout(Duration::from_secs_f64(flags.num("read-timeout", 60.0f64)?))
        .metrics(metrics_path.is_some());
    let policy = match flags.str("policy") {
        None => None,
        Some(name) => Some(PolicyKind::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
            CliError::Usage(format!("unknown --policy `{name}` (use {})", known.join(", ")))
        })?),
    };
    if let Some(kind) = policy {
        builder = builder.policy(kind);
    }
    if let Some(path) = flags.str("reload-from") {
        builder = builder.reload_from(path);
    }
    if let Some(secs) = flags.str("reload-poll") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| CliError::Usage(format!("bad value for --reload-poll: `{secs}`")))?;
        builder = builder.reload_poll(Duration::from_secs_f64(secs));
    }
    let cfg = builder.build()?;

    // Policy mode answers from the online estimator, so the snapshot is
    // only the boot-time fallback — the built-in fixture will do when no
    // input was named.
    let snap =
        if cfg.policy.is_some() && flags.str("snapshot").is_none() && flags.str("survey").is_none()
        {
            builtin_snapshot()?
        } else {
            load_or_build_snapshot(flags)?
        };
    if let Some(path) = flags.str("save-snapshot") {
        let file = File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut w = BufWriter::new(file);
        beware::dataset::snapshot::write_snapshot(&mut w, &snap)
            .and_then(|()| w.flush())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("snapshot ({} prefixes) -> {path}", snap.entries.len());
    }
    let oracle = Arc::new(Oracle::from_snapshot(snap).map_err(|e| e.to_string())?);
    let shards = cfg.shards;
    let mode = match cfg.policy {
        Some(kind) => format!(", online policy {}", kind.name()),
        None => String::new(),
    };
    let handle = server::start(Arc::clone(&oracle), (bind, port), cfg)
        .map_err(|e| format!("binding {bind}:{port}: {e}"))?;
    println!(
        "oracle listening on {} ({} prefixes, {} shards{mode})",
        handle.local_addr(),
        oracle.entry_count(),
        shards,
    );
    // The port line is what scripts (and tests) parse — make sure it is
    // out before we block.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let metrics = handle.join();
    if let Some(path) = metrics_path {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("telemetry -> {path} ({} metrics)", metrics.len());
    }
    println!("oracle stopped");
    Ok(())
}

/// One round-trip against a running oracle: a query (default), a stats
/// fetch, or a shutdown request.
fn cmd_query(flags: &Flags) -> Result<(), CliError> {
    let mut client = connect(flags)?;
    match flags.str("op").unwrap_or("query") {
        "query" => {
            let addr_text = flags.str("addr").unwrap_or("192.0.2.1");
            let addr: std::net::Ipv4Addr =
                addr_text.parse().map_err(|_| format!("bad --addr `{addr_text}`"))?;
            let r = pct_tenths(flags, "addr-pct", 950)?;
            let c = pct_tenths(flags, "ping-pct", 950)?;
            let ans = client.query(u32::from(addr), r, c).map_err(|e| e.to_string())?;
            let source = match ans.status {
                Status::Exact => {
                    format!("prefix {}/{}", std::net::Ipv4Addr::from(ans.prefix), ans.prefix_len)
                }
                Status::Fallback => "global fallback".into(),
            };
            println!(
                "{addr_text} at ({:.1}%, {:.1}%): wait {:.6} s ({source})",
                f64::from(r) / 10.0,
                f64::from(c) / 10.0,
                ans.timeout_secs,
            );
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!(
                "queries {} | exact {} | fallback {}",
                s.queries, s.hits_exact, s.hits_fallback
            );
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown");
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --op `{other}` (use query, stats or shutdown)"
            )))
        }
    }
    Ok(())
}

/// Operational commands around hot snapshot reload: inspect the served
/// snapshot, trigger a reload over the wire, or build a `.bwtd` delta
/// offline.
fn cmd_admin(flags: &Flags) -> Result<(), CliError> {
    let read_snap = |path: &str| -> Result<beware::dataset::TimeoutSnapshot, CliError> {
        let file = File::open(path).map_err(|e| CliError::Io(format!("opening {path}: {e}")))?;
        beware::dataset::snapshot::read_snapshot(&mut BufReader::new(file))
            .map_err(|e| decode_err(path, e))
    };
    match flags.required("op")? {
        "info" => {
            let mut client = connect(flags)?;
            let info = client.snapshot_info().map_err(|e| e.to_string())?;
            println!(
                "snapshot version {} | {} prefixes | checksum {:016x}",
                info.version, info.entries, info.checksum
            );
        }
        "reload" => {
            let kind = match flags.str("kind").unwrap_or("full") {
                "full" => ReloadKind::Full,
                "delta" => ReloadKind::Delta,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown --kind `{other}` (use full or delta)"
                    )))
                }
            };
            let mut client = connect(flags)?;
            let info = client.reload(kind).map_err(|e| e.to_string())?;
            println!(
                "reloaded: version {} | {} prefixes | checksum {:016x}",
                info.version, info.entries, info.checksum
            );
        }
        "diff" => {
            let base = read_snap(flags.required("base")?)?;
            let target = read_snap(flags.required("target")?)?;
            let delta = beware::dataset::snapshot::diff_snapshot(&base, &target)
                .map_err(|e| CliError::Corrupt(format!("diffing snapshots: {e}")))?;
            let out = flags.required("out")?;
            let file =
                File::create(out).map_err(|e| CliError::Io(format!("creating {out}: {e}")))?;
            let mut w = BufWriter::new(file);
            beware::dataset::snapshot::write_delta(&mut w, &delta)
                .and_then(|()| w.flush())
                .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
            println!(
                "delta {:016x} -> {:016x}: {} upserts, {} removals{} -> {out}",
                delta.base_checksum,
                delta.target_checksum,
                delta.upserts.len(),
                delta.removed.len(),
                if delta.new_fallback.is_some() { ", new fallback" } else { "" },
            );
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --op `{other}` (use info, reload or diff)"
            )))
        }
    }
    Ok(())
}

/// Self-contained chaos run: serve a snapshot, put the seeded fault proxy
/// in front of it, hammer it with verifying clients, and report whether
/// the no-hang / no-wrong-answer contract held (see DESIGN.md §9).
///
/// Without `--snapshot`/`--survey` a small built-in simulated campaign
/// supplies the snapshot, so `beware chaos --seed 101` works out of the
/// box (and in CI).
fn cmd_chaos(flags: &Flags) -> Result<(), CliError> {
    let snap = if flags.str("snapshot").is_some() || flags.str("survey").is_some() {
        load_or_build_snapshot(flags)?
    } else {
        builtin_snapshot()?
    };
    let oracle = Arc::new(Oracle::from_snapshot(snap).map_err(|e| e.to_string())?);

    let seed: u64 = flags.num("seed", 101u64)?;
    let fault_cfg = match flags.str("profile").unwrap_or("chaos") {
        "chaos" => FaultCfg::chaos(seed),
        "split" => FaultCfg::split_only(seed),
        "off" => FaultCfg::disabled(seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --profile `{other}` (use chaos, split or off)"
            )))
        }
    };
    let workers: usize = flags.num("workers", 3usize)?;
    let requests: u32 = flags.num("requests", 200u32)?;
    let metrics_path = flags.str("metrics");

    let cfg = server::ServerCfg::builder()
        .shards(flags.num("shards", 2usize)?)
        .idle_timeout(Duration::from_secs(30))
        .metrics(metrics_path.is_some())
        .build()?;
    let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", cfg)
        .map_err(|e| format!("binding the chaos target server: {e}"))?;
    let server_addr = handle.local_addr();
    let proxy = ChaosProxy::start(server_addr, fault_cfg)
        .map_err(|e| format!("starting the chaos proxy: {e}"))?;
    let proxy_addr = proxy.local_addr();
    println!(
        "chaos: oracle {server_addr} behind fault proxy {proxy_addr} \
         (seed {seed}, {workers} workers x {requests} requests)"
    );

    // Workers: every answered query is verified bit-for-bit against the
    // in-process oracle; every failure must be a typed ClientError; a
    // faulted connection is replaced. `(ok, typed errors, wrong answers)`
    // per worker.
    let mut joins = Vec::new();
    for w in 0..workers as u64 {
        let oracle = Arc::clone(&oracle);
        joins.push(std::thread::spawn(move || {
            let mut rng = beware::runtime::rng::SplitMix64::new(seed ^ w.wrapping_mul(0x9e37_79b9));
            let connect = || {
                Client::connect_retry(proxy_addr, Duration::from_secs(2), Duration::from_secs(2))
            };
            let (mut ok, mut errs, mut wrong) = (0u64, 0u64, 0u64);
            let Ok(mut client) = connect() else { return (0, 1, 0) };
            for _ in 0..requests {
                let addr = rng.next_u64() as u32;
                match client.query(addr, 950, 950) {
                    Ok(ans) => {
                        let truth = oracle.lookup(addr, 950, 950).expect("950 supported");
                        if ans.timeout_bits == truth.timeout_bits && ans.status == truth.status {
                            ok += 1;
                        } else {
                            wrong += 1;
                        }
                    }
                    Err(
                        ClientError::Io(_)
                        | ClientError::Proto(_)
                        | ClientError::Server(_)
                        | ClientError::UnexpectedReply
                        | ClientError::Poisoned,
                    ) => {
                        errs += 1;
                        match connect() {
                            Ok(c) => client = c,
                            Err(_) => {
                                errs += 1;
                                break;
                            }
                        }
                    }
                }
            }
            (ok, errs, wrong)
        }));
    }
    let (mut ok, mut errs, mut wrong) = (0u64, 0u64, 0u64);
    for j in joins {
        let (o, e, x) = j.join().map_err(|_| "chaos worker panicked")?;
        ok += o;
        errs += e;
        wrong += x;
    }

    proxy.stop();
    let fault_metrics = proxy.join();
    let mut c = Client::connect_retry(server_addr, Duration::from_secs(5), Duration::from_secs(2))
        .map_err(|e| format!("reconnecting for shutdown: {e}"))?;
    c.shutdown().map_err(|e| format!("shutting the target server down: {e}"))?;
    let mut metrics = handle.join();

    let count = |name: &str| fault_metrics.counter(name).unwrap_or(0);
    println!(
        "injected: {} splits, {} delays, {} corruptions, {} truncations, {} closes, {} stalls",
        count("faults/injected/splits"),
        count("faults/injected/delays"),
        count("faults/injected/corruptions"),
        count("faults/injected/truncations"),
        count("faults/injected/closes"),
        count("faults/injected/stalls"),
    );
    println!("requests: {ok} correct, {errs} typed errors, {wrong} wrong answers");
    if let Some(path) = metrics_path {
        metrics.merge(&fault_metrics);
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("telemetry -> {path} ({} metrics)", metrics.len());
    }
    if wrong > 0 {
        return Err(format!("{wrong} wrong answer(s) under fault injection").into());
    }
    Ok(())
}

/// Address pool for load generation: prefixes from the snapshot when
/// given (so most queries exercise exact-match lookups), plus a
/// deterministic salt of fallback addresses; otherwise a pure
/// pseudorandom pool.
fn addr_pool_from(snap: Option<&beware::dataset::TimeoutSnapshot>, seed: u64) -> Vec<u32> {
    let mut pool = Vec::new();
    if let Some(snap) = snap {
        for e in &snap.entries {
            pool.push(e.prefix);
            pool.push(e.prefix | (!beware::dataset::snapshot::prefix_mask(e.len) & 0x7));
        }
    }
    let mut state = seed ^ 0x5eed_f00d;
    let extra = if pool.is_empty() { 256 } else { 16 };
    for _ in 0..extra {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        pool.push((state >> 32) as u32);
    }
    pool
}

/// Closed-loop load generator; writes the `BENCH_3.json` report. With
/// `--conns N` it switches to the mass-connection benchmark instead
/// (see [`cmd_loadgen_mass`]).
fn cmd_loadgen(flags: &Flags) -> Result<(), CliError> {
    if flags.str("reload-bench").is_some() {
        return cmd_loadgen_reload(flags);
    }
    if flags.str("conns").is_some() {
        return cmd_loadgen_mass(flags);
    }
    let addr = parse_host(flags)?;
    let seed: u64 = flags.num("seed", 0xbe0a_2e11u64)?;
    let snap =
        if flags.str("snapshot").is_some() { Some(load_or_build_snapshot(flags)?) } else { None };
    let cfg = loadgen::LoadCfg {
        workers: flags.num("workers", 4usize)?,
        requests_per_worker: flags.num("requests", 1000usize)?,
        addr_pool: addr_pool_from(snap.as_ref(), seed),
        addr_pct_tenths: pct_tenths(flags, "addr-pct", 950)?,
        ping_pct_tenths: pct_tenths(flags, "ping-pct", 950)?,
        seed,
        read_timeout: Duration::from_secs(5),
        report_rtts: flags.num("report-rtts", false)?,
    };
    let report = loadgen::run(addr, &cfg)?;
    println!("{}", report.render());
    let out = flags.str("out").unwrap_or("BENCH_3.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("report -> {out}");
    Ok(())
}

/// Mass-connection benchmark (`loadgen --conns N`): start an in-process
/// oracle server, then sweep idle-connection pools up to `N` — at each
/// scale hold the pool open, sample process CPU over a quiet window, and
/// drive a hot closed-loop subset — writing `BENCH_4.json`. In-process
/// is what makes the CPU numbers honest: `CLOCK_PROCESS_CPUTIME_ID`
/// covers the server's shards, so near-zero idle CPU at 10k connections
/// demonstrates the readiness-driven serve path (a spin-polling server
/// burns CPU proportional to connections whether or not they speak).
fn cmd_loadgen_mass(flags: &Flags) -> Result<(), CliError> {
    let conns: usize = flags.num("conns", 1000usize)?;
    if conns == 0 {
        return Err("--conns must be >= 1".into());
    }
    let seed: u64 = flags.num("seed", 0xbe0a_2e11u64)?;
    let snap = if flags.str("snapshot").is_some() || flags.str("survey").is_some() {
        load_or_build_snapshot(flags)?
    } else {
        builtin_snapshot()?
    };
    let pool = addr_pool_from(Some(&snap), seed);
    let oracle = Arc::new(Oracle::from_snapshot(snap).map_err(|e| e.to_string())?);

    let shards: usize = flags.num("shards", beware::netsim::default_threads())?;
    // The idle pool must survive the whole sweep: eviction here would
    // measure the server closing connections, not holding them.
    let cfg = server::ServerCfg::builder()
        .shards(shards)
        .idle_timeout(Duration::from_secs(600))
        .metrics(false)
        .build()?;
    let handle = server::start(oracle, "127.0.0.1:0", cfg)
        .map_err(|e| format!("starting the in-process oracle: {e}"))?;
    let addr = handle.local_addr();
    println!("mass benchmark: in-process oracle on {addr} ({shards} shards)");

    // Three scales up to the requested count (fewer when they collapse),
    // so one invocation records how cost moves with connection count.
    let mut scales = vec![(conns / 10).clamp(100, conns), (conns / 2).clamp(100, conns), conns];
    scales.sort_unstable();
    scales.dedup();

    let idle_settle = Duration::from_secs_f64(flags.num("idle-settle", 0.5f64)?);
    let mut runs = Vec::new();
    for &n in &scales {
        let mcfg = loadgen::MassCfg {
            conns: n,
            hot_workers: flags.num("hot-workers", 4usize)?,
            requests_per_worker: flags.num("requests", 1000usize)?,
            addr_pool: pool.clone(),
            addr_pct_tenths: pct_tenths(flags, "addr-pct", 950)?,
            ping_pct_tenths: pct_tenths(flags, "ping-pct", 950)?,
            seed,
            read_timeout: Duration::from_secs(5),
            idle_settle,
            shards,
        };
        let report = loadgen::run_mass(addr, &mcfg)?;
        println!("{}", report.render());
        runs.push(report);
    }

    handle.shutdown();
    let _ = handle.join();
    let out = flags.str("out").unwrap_or("BENCH_4.json");
    std::fs::write(out, loadgen::mass_sweep_json(&runs))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("report -> {out}");
    Ok(())
}

/// Reload-under-load benchmark (`loadgen --reload-bench N`): start an
/// in-process oracle server with a reload source file, hammer it with
/// verifying workers, and hot-swap the snapshot `N` times mid-load —
/// alternating full (`.bwts`) and delta (`.bwtd`) reloads — writing
/// `BENCH_5.json`. Every answer is checked bit-for-bit against the set
/// of snapshot generations, so a nonzero `wrong_answers` means a torn
/// read escaped the epoch swap; the run fails on any wrong answer or
/// reload failure.
fn cmd_loadgen_reload(flags: &Flags) -> Result<(), CliError> {
    let reloads: usize = flags.num("reload-bench", 4usize)?;
    if reloads == 0 {
        return Err(CliError::Usage("--reload-bench must be >= 1".into()));
    }
    let seed: u64 = flags.num("seed", 0xbe0a_2e11u64)?;
    let shards: usize = flags.num("shards", 2usize)?;

    // One snapshot generation per reload, plus the one served at boot.
    let mut snaps = Vec::with_capacity(reloads + 1);
    for g in 0..=reloads as u64 {
        snaps.push(builtin_snapshot_gen(g)?);
    }
    let truth = snaps
        .iter()
        .map(|s| Oracle::from_snapshot(s.clone()).map_err(|e| CliError::Other(e.to_string())))
        .collect::<Result<Vec<Oracle>, CliError>>()?;

    // The reload source lives in the temp dir; full and delta files are
    // both written there and the server is pointed at whichever the next
    // reload should pick up.
    let source = std::env::temp_dir().join(format!("beware-reload-{}.snap", std::process::id()));
    let write_file = |bytes: Vec<u8>| -> Result<(), String> {
        std::fs::write(&source, bytes).map_err(|e| format!("writing {}: {e}", source.display()))
    };
    let full_bytes = |snap: &beware::dataset::TimeoutSnapshot| -> Result<Vec<u8>, String> {
        let mut buf = Vec::new();
        beware::dataset::snapshot::write_snapshot(&mut buf, snap).map_err(|e| e.to_string())?;
        Ok(buf)
    };

    let cfg = server::ServerCfg::builder()
        .shards(shards)
        .idle_timeout(Duration::from_secs(60))
        .metrics(true)
        .reload_from(&source)
        .build()?;
    let oracle = Oracle::from_snapshot(snaps[0].clone()).map_err(|e| e.to_string())?;
    let handle = server::start(oracle, "127.0.0.1:0", cfg)
        .map_err(|e| format!("starting the in-process oracle: {e}"))?;
    let addr = handle.local_addr();
    println!(
        "reload benchmark: in-process oracle on {addr} ({shards} shards, \
         {reloads} reloads, source {})",
        source.display()
    );

    let mut admin = Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(5))
        .map_err(|e| format!("connecting the admin client: {e}"))?;
    let rcfg = loadgen::ReloadCfg {
        workers: flags.num("workers", 4usize)?,
        addr_pool: addr_pool_from(Some(&snaps[0]), seed),
        addr_pct_tenths: pct_tenths(flags, "addr-pct", 950)?,
        ping_pct_tenths: pct_tenths(flags, "ping-pct", 950)?,
        seed,
        reloads,
        reload_gap: Duration::from_millis(flags.num("gap-ms", 100u64)?),
        cooldown: Duration::from_millis(flags.num("cooldown-ms", 100u64)?),
        truth,
        ..Default::default()
    };
    let result = loadgen::run_reload(addr, &rcfg, |i| {
        // Alternate full and delta reloads so both paths are exercised;
        // either way the server must end up serving generation i+1.
        let target = &snaps[i + 1];
        let kind = if i % 2 == 0 {
            write_file(full_bytes(target)?)?;
            ReloadKind::Full
        } else {
            let delta = beware::dataset::snapshot::diff_snapshot(&snaps[i], target)
                .map_err(|e| e.to_string())?;
            let mut buf = Vec::new();
            beware::dataset::snapshot::write_delta(&mut buf, &delta).map_err(|e| e.to_string())?;
            write_file(buf)?;
            ReloadKind::Delta
        };
        let info = admin.reload(kind).map_err(|e| format!("reload {i}: {e}"))?;
        if info.checksum != beware::dataset::snapshot::snapshot_checksum(target) {
            return Err(format!(
                "reload {i} landed on checksum {:016x}, wanted {:016x}",
                info.checksum,
                beware::dataset::snapshot::snapshot_checksum(target)
            ));
        }
        Ok(())
    });
    handle.shutdown();
    let metrics = handle.join();
    let _ = std::fs::remove_file(&source);
    let report = result?;

    println!("{}", report.render());
    let failures = metrics.counter("oracle/reload_failures").unwrap_or(0);
    if failures > 0 {
        return Err(format!("{failures} reload failure(s) recorded by the server").into());
    }
    if report.wrong_answers > 0 {
        return Err(format!(
            "{} answer(s) matched no snapshot generation: torn read",
            report.wrong_answers
        )
        .into());
    }
    let out = flags.str("out").unwrap_or("BENCH_5.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("report -> {out}");
    Ok(())
}

/// Adaptive-RTO shootout (`beware shootout`): replay simulated probe
/// campaigns through every registered timeout policy — the three online
/// estimators plus the paper's static oracle — and score false-timeout
/// rate, tail waiting cost and estimator memory under regime shifts,
/// including a staleness sweep that finds the snapshot age where online
/// adaptation overtakes the stale oracle. Writes `BENCH_6.json`; every
/// number in it is simulation-derived, so the file is byte-identical
/// for any `--threads` value.
fn cmd_shootout(flags: &Flags) -> Result<(), CliError> {
    if flags.str("list-policies").is_some() {
        for k in PolicyKind::ALL {
            println!("{:<16} {}", k.name(), k.summary());
        }
        return Ok(());
    }
    let threads: usize = flags.num("threads", beware::netsim::default_threads())?;
    let mut cfg = ShootoutCfg::standard(
        flags.num("seed", 7u64)?,
        flags.num("blocks", 6u32)?,
        flags.num("rounds", 60u32)?,
        flags.num("round-secs", 60.0f64)?,
        threads,
    );
    cfg.addr_pct_tenths = pct_tenths(flags, "addr-pct", cfg.addr_pct_tenths)?;
    cfg.ping_pct_tenths = pct_tenths(flags, "ping-pct", cfg.ping_pct_tenths)?;
    cfg.penalty_secs = flags.num("penalty", cfg.penalty_secs)?;

    let metrics_path = flags.str("metrics");
    let mut metrics = if metrics_path.is_some() { Registry::new() } else { Registry::disabled() };
    let t0 = std::time::Instant::now();
    let build: shootout::SnapshotBuild<'_> = &|samples, addr_t, ping_t| {
        let cfg = SnapshotCfg {
            addr_pct_tenths: vec![addr_t],
            ping_pct_tenths: vec![ping_t],
            ..Default::default()
        };
        build_snapshot(samples, &cfg).map_err(|e| e.to_string())
    };
    let report = shootout::run(&cfg, build, &mut metrics)?;
    print!("{}", report.summary());

    let out = flags.str("out").unwrap_or("BENCH_6.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    let sim_secs: f64 = report.scenarios.iter().map(|s| s.sim_span_secs).sum();
    println!(
        "shootout complete on {threads} thread(s): {:.0} simulated seconds in {:?} -> {out}",
        sim_secs,
        t0.elapsed()
    );
    if let Some(path) = metrics_path {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("telemetry -> {path} ({} metrics)", metrics.len());
    }
    Ok(())
}

/// A `--event` spec: `kind:tier:id:from:until[:scale]`. `until` may be
/// `inf`; `id` takes decimal or `0x` hex.
fn parse_link_event(spec: &str) -> Result<LinkEvent, CliError> {
    let usage = || {
        CliError::Usage(format!(
            "bad --event `{spec}` (expected kind:tier:id:from:until[:scale], \
             e.g. degrade:access:0x0100:10:60:0.01 or partition:spine:3:30:inf)"
        ))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 5 {
        return Err(usage());
    }
    let id = if let Some(hex) = parts[2].strip_prefix("0x") {
        u32::from_str_radix(hex, 16).map_err(|_| usage())?
    } else {
        parts[2].parse::<u32>().map_err(|_| usage())?
    };
    let link = match parts[1] {
        "access" => LinkId::Access(u16::try_from(id).map_err(|_| usage())?),
        "core" => LinkId::Core(id),
        "spine" => LinkId::Spine(u8::try_from(id).map_err(|_| usage())?),
        _ => return Err(usage()),
    };
    let secs = |s: &str| -> Result<f64, CliError> {
        if s == "inf" {
            Ok(f64::INFINITY)
        } else {
            s.parse().map_err(|_| usage())
        }
    };
    let kind = match (parts[0], parts.len()) {
        ("partition", 5) => LinkEventKind::Partition,
        ("degrade", 6) => {
            LinkEventKind::Degrade { capacity_scale: parts[5].parse().map_err(|_| usage())? }
        }
        _ => return Err(usage()),
    };
    Ok(LinkEvent { link, at_secs: secs(parts[3])?, until_secs: secs(parts[4])?, kind })
}

fn cmd_fullspace(flags: &Flags) -> Result<(), CliError> {
    let code = flags.str("vantage").unwrap_or("w");
    let v =
        code.chars().next().and_then(vantage).ok_or_else(|| {
            CliError::Usage(format!("unknown vantage `{code}` (use w, c, j or g)"))
        })?;
    let base: std::net::Ipv4Addr =
        flags.str("base").unwrap_or("0.0.0.0").parse().map_err(|_| {
            CliError::Usage("bad value for --base (expected a dotted quad)".to_string())
        })?;
    let space_bits = flags.num("bits", 30u32)?;
    let mut cfg = FullSpaceCfg {
        space_bits,
        base_addr: u32::from(base),
        total_blocks: flags.num("blocks", 65_536u32)?,
        year: flags.num("year", 2015u16)?,
        seed: flags.num("seed", 0x1511_0b5eu64)?,
        vantage: v,
        threads: flags.num("threads", beware::netsim::default_threads())?,
        host_cap: flags.num("lazy-hosts", 16_384usize)?,
        quiescence_secs: None,
        probe_interval_ns: flags.num("probe-ns", 10_000u64)?,
        chunk_bits: flags.num("chunk-bits", space_bits.min(24))?,
        link_events: Vec::new(),
    };
    if let Some(q) = flags.str("quiescence") {
        let secs: f64 =
            q.parse().map_err(|_| CliError::Usage(format!("bad value for --quiescence: `{q}`")))?;
        cfg.quiescence_secs = Some(secs);
    }
    if let Some(spec) = flags.str("event") {
        cfg.link_events.push(parse_link_event(spec)?);
    }
    // run() rejects inconsistent geometry (bits/chunk-bits/base overflow):
    // those are all flag problems.
    let report = beware::bench::fullspace::run(&cfg).map_err(CliError::Usage)?;
    print!("{}", report.summary_text());
    if let Some(out) = flags.str("out") {
        std::fs::write(out, report.summary_json())
            .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
        println!("summary -> {out}");
    }
    let bench = flags.str("bench").unwrap_or("BENCH_7.json");
    std::fs::write(bench, report.bench_json())
        .map_err(|e| CliError::Io(format!("writing {bench}: {e}")))?;
    println!("fullspace complete on {} thread(s) -> {bench}", cfg.threads);
    Ok(())
}

/// `beware simserve`: the oracle server plus N closed-loop clients run
/// entirely inside the netsim — the serve engine over channel
/// transports, every timeout a cancellable wheel timer, faults as
/// topology events. The summary is a pure function of the campaign
/// identity (everything except `--threads`), so CI can `cmp` it across
/// thread counts and repeat runs.
fn cmd_simserve(flags: &Flags) -> Result<(), CliError> {
    let regime_name = flags.str("regime").unwrap_or("steady");
    let regime = beware::bench::simserve::Regime::from_name(regime_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown --regime `{regime_name}` (use steady, covid_step or diurnal_drift)"
        ))
    })?;
    let policy = match flags.str("policy") {
        None => None,
        Some(name) => Some(PolicyKind::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
            CliError::Usage(format!("unknown --policy `{name}` (use {})", known.join(", ")))
        })?),
    };
    let cfg = beware::bench::SimServeCfg {
        clients: flags.num("clients", 1_000_000u64)?,
        queries_per_client: flags.num("queries", 2u32)?,
        cell_bits: flags.num("cell-bits", 16u32)?,
        seed: flags.num("seed", 0x1511_0b5eu64)?,
        regime,
        partition: flags.str("partition").is_some(),
        interval_us: flags.num("interval-us", 1_000_000u64)?,
        threads: flags.num("threads", beware::netsim::default_threads())?,
        policy,
    };
    let report = beware::bench::simserve::run(&cfg).map_err(CliError::Usage)?;
    print!("{}", report.summary_text());
    if let Some(out) = flags.str("out") {
        std::fs::write(out, report.summary_json())
            .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
        println!("summary -> {out}");
    }
    let bench = flags.str("bench").unwrap_or("BENCH_8.json");
    std::fs::write(bench, report.bench_json())
        .map_err(|e| CliError::Io(format!("writing {bench}: {e}")))?;
    println!("simserve complete on {} thread(s) -> {bench}", cfg.threads);
    Ok(())
}
