//! # beware — *Timeouts: Beware Surprisingly High Delay*, reproduced in Rust
//!
//! Umbrella crate re-exporting the full stack of the IMC 2015 reproduction:
//!
//! * [`runtime`] — the shared execution substrate: the `Clock` trait
//!   (wall and deterministic virtual time), the canonical SplitMix64 RNG
//!   and seed derivation, and the `DeadlineWheel` scheduler every timeout
//!   loop runs on (see DESIGN.md §10),
//! * [`wire`] — IPv4/ICMP/UDP/TCP codecs and the zmap-style payload embedding,
//! * [`asdb`] — longest-prefix-match AS/geo database and address-space generator,
//! * [`netsim`] — deterministic discrete-event Internet simulator,
//! * [`dataset`] — ISI-survey-like record model and codecs,
//! * [`probe`] — survey / zmap / scamper probing engines,
//! * [`analysis`] — the paper's analysis pipeline: unmatched-response
//!   matching, artifact filters, percentile aggregation and timeout tables,
//! * [`telemetry`] — deterministic counters/histograms threaded through the
//!   whole stack (see DESIGN.md §7 for schema and merge semantics),
//! * [`serve`] — the timeout-oracle service: snapshot builder, sharded TCP
//!   daemon, binary wire protocol, client library and load generator
//!   (see DESIGN.md §8),
//! * [`policy`] — online adaptive-timeout estimators (Jacobson/Karn RTO,
//!   exponential backoff, windowed quantile) plus the replay shootout
//!   that scores them against the static oracle (see DESIGN.md §13),
//! * [`faultsim`] — seeded fault injection for the service: a byte-level
//!   `FaultyTransport` wrapper and an in-process TCP chaos proxy backing
//!   `beware chaos` and the chaos test suite (see DESIGN.md §9),
//! * [`mod@bench`] — the campaign harness: scaled experiment contexts and the
//!   deterministic parallel fan-out behind `beware campaign --threads N`.
//!
//! See `examples/quickstart.rs` for the five-minute tour and `DESIGN.md` for
//! the per-experiment index.

#![forbid(unsafe_code)]

pub use beware_asdb as asdb;
pub use beware_bench as bench;
pub use beware_core as analysis;
pub use beware_dataset as dataset;
pub use beware_faultsim as faultsim;
pub use beware_netsim as netsim;
pub use beware_policy as policy;
pub use beware_probe as probe;
pub use beware_runtime as runtime;
pub use beware_serve as serve;
pub use beware_telemetry as telemetry;
pub use beware_wire as wire;
