//! Calibration integration tests: the full stack (generator → simulator →
//! probers → analysis) must land the paper's headline findings within
//! bands, at the CI-friendly small scale.
//!
//! The shared [`ExperimentCtx`] is built once per test binary via a
//! `OnceLock`, since it drives a half-million-probe survey pair.

use beware_bench::{experiments, ExperimentCtx, Scale};
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentCtx {
    static CTX: OnceLock<ExperimentCtx> = OnceLock::new();
    CTX.get_or_init(|| ExperimentCtx::build(Scale::small()))
}

#[test]
fn survey_response_rate_is_internet_like() {
    // The paper: "in typical ISI surveys, 20% of pings receive a response".
    let rate = ctx().survey_w.stats.response_rate();
    assert!((0.10..0.40).contains(&rate), "response rate {rate}");
}

#[test]
fn turtle_fraction_is_about_five_percent() {
    // "around 5% of addresses have latencies greater than 1s in each scan".
    for scan in &ctx().scans {
        let frac = beware_core::turtles::turtle_fraction(scan, 1.0);
        assert!((0.03..0.10).contains(&frac), "turtle fraction {frac}");
    }
}

#[test]
fn turtle_fraction_is_stable_across_scans() {
    let f7 = experiments::fig7::run(ctx());
    assert!(f7.turtle_fraction_spread() < 0.01, "spread {}", f7.turtle_fraction_spread());
}

#[test]
fn table2_headline_cells_in_band() {
    let t2 = experiments::table2::run(ctx());
    // Paper: 5 s at 95/95 — at least, a short timeout must fail here.
    let c9595 = t2.headline_95_95();
    assert!((1.0..12.0).contains(&c9595), "95/95 = {c9595}");
    // Paper: 145 s at 99/99.
    let c9999 = t2.table.cell(99.0, 99.0).unwrap();
    assert!((40.0..420.0).contains(&c9999), "99/99 = {c9999}");
    // Most addresses are fast: 50/50 well under a second.
    let c5050 = t2.table.cell(50.0, 50.0).unwrap();
    assert!(c5050 < 0.5, "50/50 = {c5050}");
    // Monotone: longer timeouts needed for higher coverage.
    assert!(c9999 > c9595 && c9595 > c5050);
}

#[test]
fn first_percentile_latency_is_low_for_nearly_everyone() {
    // Paper: "the 1st percentile latency is below 330ms for 99% of IP
    // addresses: most addresses are capable of responding with low
    // latency".
    let t2 = experiments::table2::run(ctx());
    let p1_of_p99_addr = t2.table.cell(99.0, 1.0).unwrap();
    assert!(p1_of_p99_addr < 1.5, "p1 at 99th addr = {p1_of_p99_addr}");
}

#[test]
fn broadcast_filter_finds_responders_and_cleans_bumps() {
    let out = &ctx().pipeline_w;
    assert!(!out.broadcast_responders.is_empty(), "no broadcast responders detected");
    let f6 = experiments::fig6::run(ctx());
    assert!(
        f6.bump_mass_after < f6.bump_mass_before,
        "filtering must reduce artifact mass: {} -> {}",
        f6.bump_mass_before,
        f6.bump_mass_after
    );
    assert!(f6.bump_mass_before > 0.0, "pre-filter bumps must exist");
}

#[test]
fn table1_accounting_shape() {
    let t1 = experiments::table1::run(ctx()).combined;
    assert!(t1.naive_matching.packets > t1.survey_detected.packets);
    assert!(t1.survey_plus_delayed.packets < t1.naive_matching.packets);
    assert!(t1.survey_plus_delayed.packets > t1.survey_detected.packets);
    assert_eq!(
        t1.survey_plus_delayed.addresses,
        t1.naive_matching.addresses
            - t1.broadcast_responses.addresses
            - t1.duplicate_responses.addresses
    );
}

#[test]
fn telefonica_brasil_tops_turtle_ranking_and_cellular_dominates() {
    let t = experiments::table4_6::run(ctx());
    assert_eq!(t.turtles[0].name, "TELEFONICA BRASIL");
    assert!(t.cellular_in_top10() >= 7, "only {} cellular in top 10", t.cellular_in_top10());
    // Cellular turtle shares around the paper's 50–80%.
    for r in t.turtles.iter().take(3) {
        let pct = r.per_scan[0].percent();
        assert!((40.0..95.0).contains(&pct), "{}: {pct}%", r.name);
    }
}

#[test]
fn south_america_leads_continents_and_north_america_is_low() {
    let t = experiments::table4_6::run(ctx());
    assert_eq!(t.continents[0].continent, beware_asdb::Continent::SouthAmerica);
    let na =
        t.continents.iter().find(|c| c.continent == beware_asdb::Continent::NorthAmerica).unwrap();
    assert!(na.per_scan[0].percent() < 5.0, "NA turtle share {}", na.per_scan[0].percent());
    let sa = &t.continents[0];
    assert!(sa.per_scan[0].percent() > 15.0, "SA turtle share {}", sa.per_scan[0].percent());
}

#[test]
fn satellite_has_floor_but_bounded_tail() {
    let f11 = experiments::fig11::run(ctx());
    let split = &f11.split;
    assert!(!split.satellite.is_empty(), "no satellite addresses in sample");
    assert!(
        split.satellite_p1_floor().unwrap() >= 0.5,
        "satellite floor {:?}",
        split.satellite_p1_floor()
    );
    assert!(
        split.satellite_p99_below(3.0) >= 0.7,
        "satellite p99<3s fraction {}",
        split.satellite_p99_below(3.0)
    );
}

#[test]
fn first_ping_effect_dominates_high_latency_addresses() {
    let f = experiments::fig12_14::run(ctx());
    let counts = f.analysis.counts;
    assert!(counts.classified() > 30, "too few classified: {}", counts.classified());
    // Paper: roughly 2/3; accept a generous band.
    let frac = counts.above_max_fraction();
    assert!((0.45..0.95).contains(&frac), "above-max fraction {frac}");
    // Wake-up estimate: median ~1.37 s, 90% < ~4 s.
    let med = f.setup_median.unwrap();
    assert!((0.7..3.0).contains(&med), "setup median {med}");
    assert!(f.setup_p90.unwrap() < 8.0, "setup p90 {:?}", f.setup_p90);
}

#[test]
fn fig4_false_match_is_330s_and_filtered() {
    let f4 = experiments::fig4::run(7);
    assert!(!f4.false_latencies.is_empty());
    for lat in &f4.false_latencies {
        assert!((328..=332).contains(lat), "false latency {lat}");
    }
    assert!(f4.filtered >= 1);
}

#[test]
fn broadcast_octet_spikes_in_both_datasets() {
    let f23 = experiments::fig2_3::run(ctx());
    // Zmap-side: every cross-address trigger is broadcast-like.
    assert!(f23.zmap.total() > 0, "no cross-address responses in scan");
    assert!(f23.zmap.interior_total() * 10 <= f23.zmap.broadcast_like_total());
    // Survey-side: clear spike ratio over the uniform background.
    assert!(f23.survey_spike_ratio > 1.3, "spike ratio {}", f23.survey_spike_ratio);
}

#[test]
fn protocol_parity_holds_and_firewalls_are_found() {
    let f10 = experiments::fig10::run(ctx());
    assert!(f10.targets > 20, "too few targets: {}", f10.targets);
    // No protocol favored: medians of the non-first probes agree within
    // a factor, not orders of magnitude.
    let spread = f10.parity_spread();
    assert!(spread < 2.0, "protocol medians diverge by {spread}");
    assert!(!f10.comparison.firewall_blocks.is_empty(), "no firewall-fronted /24s detected");
    // Excluding firewall blocks removes the fast constant-TTL cluster.
    let raw = f10.comparison.seq0_median(beware_core::protocols::Proto::Tcp);
    let clean = f10.comparison.tcp_seq0_no_firewall.quantile(0.5);
    if let (Some(raw), Some(clean)) = (raw, clean) {
        assert!(clean >= raw * 0.8, "firewall removal lowered TCP median: {raw} -> {clean}");
    }
}

#[test]
fn reprobe_confirms_extremes_exist_but_vary() {
    let f8 = experiments::fig8::run(ctx());
    assert!(f8.selected > 0, "no extreme addresses selected");
    assert!(f8.responded > 0, "nobody responded to the re-probe");
    // Some addresses must still show very high latencies, but not all —
    // extreme behavior is time-varying.
    assert!(f8.still_extreme < 0.9, "everything still extreme: {}", f8.still_extreme);
}

#[test]
fn broadcast_filter_ablation_scores_well_at_paper_params() {
    let ab = experiments::ablation::run(ctx());
    assert!(!ab.truth.is_empty(), "scenario must contain silent responders");
    let p = ab.paper_point();
    assert!(p.recall() >= 0.85, "recall {} at paper params", p.recall());
    assert!(p.precision() >= 0.85, "precision {} at paper params", p.precision());
}

#[test]
fn listening_longer_rescues_false_outages() {
    let r = experiments::recommendation::run(ctx());
    assert!(r.monitored > 50, "monitored {}", r.monitored);
    assert!(r.naive_outages > 0, "the naive prober must produce false outages");
    assert!(r.rescued > 0, "the long listen must rescue some verdicts");
    assert!(
        r.long_outages < r.naive_outages,
        "long listen must strictly reduce false outages: {} -> {}",
        r.naive_outages,
        r.long_outages
    );
}
