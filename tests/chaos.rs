//! Chaos suite: the oracle service behind a seeded fault-injecting TCP
//! proxy must never hang and never serve a wrong answer. Every request
//! either completes with the bit-identical offline answer or fails with a
//! *typed* [`ClientError`] in bounded time — the whole run sits under a
//! wall-clock watchdog so a regression to an unbounded wait fails the
//! test instead of wedging CI.
//!
//! Also pins the PR's hardening as regressions:
//!
//! * a stalled reader (a connection that writes queries but never drains
//!   replies) must not delay a concurrent well-behaved connection on the
//!   *same* shard — the bounded output queue + read budget fix;
//! * the deterministic metric families must be byte-identical with and
//!   without the fault layer in the path (faults only ever count into the
//!   excluded `faults/` family).

use beware::analysis::percentile::LatencySamples;
use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::faultsim::{ChaosProxy, FaultCfg};
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;
use beware::serve::{build_snapshot, server, Client, ClientError, Oracle, SnapshotCfg};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Simulated campaign → filtered per-address samples (same fixture as
/// tests/serve.rs, smaller plan: chaos runs many requests per seed).
fn campaign_samples() -> BTreeMap<u32, LatencySamples> {
    let sc =
        Scenario::new(ScenarioCfg { year: 2015, seed: 11, total_blocks: 48, vantage: VANTAGES[0] });
    let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).take(12).collect();
    let cfg = SurveyCfg { blocks, rounds: 10, seed: 11, ..Default::default() };
    let mut world = sc.build_world();
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut world);
    run_pipeline(&records, &PipelineCfg::default()).samples
}

fn serve_cfg(shards: usize) -> server::ServerCfg {
    server::ServerCfg::builder()
        .shards(shards)
        .idle_timeout(Duration::from_secs(30))
        .metrics(true)
        .build()
        .unwrap()
}

/// Run `f` on its own thread and panic if it has not finished within
/// `limit` — the suite's no-hang enforcement.
fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    name: &'static str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let out = f();
        tx.send(()).ok();
        out
    });
    match rx.recv_timeout(limit) {
        Ok(()) => worker.join().expect("watchdogged body panicked"),
        Err(_) => panic!("watchdog: {name} still running after {limit:?} — hang"),
    }
}

/// Assert `ans` equals the offline oracle bit for bit.
fn assert_answer_matches(oracle: &Oracle, addr: u32, ans: &beware::serve::Answer) {
    let truth = oracle.lookup(addr, 950, 950).expect("950 is always a supported level");
    assert_eq!(ans.status, truth.status, "status for {addr:08x}");
    assert_eq!(
        ans.timeout_bits,
        truth.timeout_bits,
        "WRONG ANSWER for {addr:08x}: served {} != offline {}",
        f64::from_bits(ans.timeout_bits),
        f64::from_bits(truth.timeout_bits),
    );
    assert_eq!((ans.prefix, ans.prefix_len), (truth.prefix, truth.prefix_len));
}

/// Drive `requests` queries through `addr`, reconnecting (bounded) after
/// every error. Returns `(ok, errors)`. Panics on a wrong answer or an
/// answer/error that takes unboundedly long (the caller's watchdog backs
/// that up).
fn drive_queries(
    addr: SocketAddr,
    oracle: &Oracle,
    schedule_seed: u64,
    requests: u32,
    probe_prefixes: &[(u32, u8)],
) -> (u32, u32) {
    let mut rng = beware::runtime::rng::SplitMix64::new(schedule_seed);
    let mut ok = 0u32;
    let mut errs = 0u32;
    let connect = || Client::connect_retry(addr, Duration::from_secs(2), Duration::from_secs(2));
    let mut client = match connect() {
        Ok(c) => c,
        Err(_) => return (0, 1),
    };
    for i in 0..requests {
        // Alternate between addresses inside known prefixes (exact
        // answers) and arbitrary addresses (mostly fallback).
        let r = rng.next_u64();
        let q_addr = if i % 2 == 0 && !probe_prefixes.is_empty() {
            let (p, len) = probe_prefixes[(r as usize) % probe_prefixes.len()];
            let host_mask = ((1u64 << (32 - u32::from(len))) - 1) as u32;
            p | ((r >> 32) as u32 & host_mask)
        } else {
            r as u32
        };
        match client.query(q_addr, 950, 950) {
            Ok(ans) => {
                assert_answer_matches(oracle, q_addr, &ans);
                ok += 1;
            }
            Err(e) => {
                // Every failure must be one of the typed variants; the
                // match is the assertion (a new variant extends it).
                match e {
                    ClientError::Io(_)
                    | ClientError::Proto(_)
                    | ClientError::Server(_)
                    | ClientError::UnexpectedReply
                    | ClientError::Poisoned => errs += 1,
                }
                // A faulted connection is dead weight: reconnect.
                match connect() {
                    Ok(c) => client = c,
                    Err(_) => {
                        errs += 1;
                        break;
                    }
                }
            }
        }
    }
    (ok, errs)
}

/// Three fixed seeds, full chaos schedule: splits, delays, corruptions,
/// truncations, abrupt closes and stalls. Every request must either
/// return the bit-identical offline answer or fail typed; the run must
/// finish under the watchdog.
#[test]
fn chaos_requests_complete_or_fail_typed_never_hang() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());
    assert!(oracle.entry_count() > 0);

    for seed in [101u64, 202, 303] {
        let oracle = Arc::clone(&oracle);
        let (ok, errs, splits) =
            with_watchdog(Duration::from_secs(90), "chaos seed run", move || {
                let handle =
                    server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(2)).unwrap();
                let server_addr = handle.local_addr();
                let proxy = ChaosProxy::start(server_addr, FaultCfg::chaos(seed)).unwrap();
                let proxy_addr = proxy.local_addr();

                let mut workers = Vec::new();
                for w in 0..3u64 {
                    let oracle = Arc::clone(&oracle);
                    let prefixes = oracle.prefixes().to_vec();
                    workers.push(std::thread::spawn(move || {
                        drive_queries(
                            proxy_addr,
                            &oracle,
                            seed ^ w.wrapping_mul(0x9e37_79b9),
                            80,
                            &prefixes,
                        )
                    }));
                }
                let mut ok = 0u32;
                let mut errs = 0u32;
                for w in workers {
                    let (o, e) = w.join().expect("worker panicked (wrong answer?)");
                    ok += o;
                    errs += e;
                }

                // Tear down: proxy first (stops injecting), then the
                // server via a clean direct connection.
                proxy.stop();
                let proxy_metrics = proxy.join();
                let mut c = Client::connect_retry(
                    server_addr,
                    Duration::from_secs(5),
                    Duration::from_secs(2),
                )
                .unwrap();
                c.shutdown().unwrap();
                let server_metrics = handle.join();
                assert!(server_metrics.counter("serve/queries").unwrap_or(0) > 0);
                let splits = proxy_metrics.counter("faults/injected/splits").unwrap_or(0);
                (ok, errs, splits)
            });
        assert!(ok > 0, "seed {seed}: no request ever succeeded under chaos");
        assert!(
            splits > 0,
            "seed {seed}: chaos schedule injected nothing (proxy not in the path?)"
        );
        eprintln!("chaos seed {seed}: {ok} ok, {errs} typed errors, {splits} splits");
    }
}

/// With only write-splitting enabled (every fragmentation, no loss), the
/// proxy is semantically transparent: every single request must succeed
/// with the bit-identical answer — the server's reassembly and the
/// client's framed reads cannot depend on TCP segmentation.
#[test]
fn split_only_proxy_is_semantically_transparent() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());

    let oracle2 = Arc::clone(&oracle);
    with_watchdog(Duration::from_secs(60), "split-only run", move || {
        let handle = server::start(Arc::clone(&oracle2), "127.0.0.1:0", serve_cfg(2)).unwrap();
        let proxy = ChaosProxy::start(handle.local_addr(), FaultCfg::split_only(7)).unwrap();

        let (ok, errs) = drive_queries(proxy.local_addr(), &oracle2, 7, 120, oracle2.prefixes());
        assert_eq!(errs, 0, "split-only faults must be invisible to the protocol");
        assert_eq!(ok, 120);

        proxy.stop();
        let metrics = proxy.join();
        assert!(metrics.counter("faults/injected/splits").unwrap_or(0) > 0);
        let mut c = Client::connect_retry(
            handle.local_addr(),
            Duration::from_secs(5),
            Duration::from_secs(2),
        )
        .unwrap();
        c.shutdown().unwrap();
        handle.join();
    });
}

/// The head-of-line regression test: on a 1-shard server, a connection
/// that floods queries and never reads a byte of its replies must not
/// delay a concurrent well-behaved connection. Before the bounded output
/// queue, the shard thread sat in `write_all_nb`'s sleep-retry loop once
/// the stalled peer's socket buffers filled, starving every other
/// connection on the shard forever.
#[test]
fn stalled_reader_does_not_block_same_shard_connections() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());

    with_watchdog(Duration::from_secs(60), "stalled-reader run", move || {
        let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(1)).unwrap();
        let addr = handle.local_addr();

        // The abuser: write queries as fast as the kernel accepts them,
        // never read a reply. Replies outgrow the abuser's receive buffer
        // and the server-side send buffer, then pile into the bounded
        // output queue until the server closes the connection — all
        // without ever blocking the shard thread.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let sent_bytes = Arc::new(AtomicUsize::new(0));
        let sent_bytes2 = Arc::clone(&sent_bytes);
        let backlog_built = Arc::new(AtomicBool::new(false));
        let backlog_built2 = Arc::clone(&backlog_built);
        let abuser = std::thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nonblocking(true).unwrap();
            let frame = beware::serve::proto::encode(&beware::serve::Message::Query {
                addr: 0x0a00_0001,
                addr_pct_tenths: 950,
                ping_pct_tenths: 950,
            });
            // ~64 KiB bursts of back-to-back queries.
            let burst: Vec<u8> = frame.iter().copied().cycle().take(frame.len() * 4800).collect();
            let mut sent = 0usize;
            while !stop2.load(Ordering::Relaxed) && sent < 4 << 20 {
                match (&s).write(&burst) {
                    Ok(n) => {
                        sent += n;
                        sent_bytes2.store(sent, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    // Server closed us (queue overflow) — the intended
                    // outcome; keep the socket open, still never reading.
                    Err(_) => break,
                }
            }
            backlog_built2.store(true, Ordering::Relaxed);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
            drop(s);
            sent
        });

        // Wait (bounded) until the abuser's backlog is demonstrably
        // choking the shard before the well-behaved client arrives — a
        // condition, not a fixed nap, so slow CI cannot race it.
        let head_start = Instant::now();
        while sent_bytes.load(Ordering::Relaxed) < 256 << 10
            && !backlog_built.load(Ordering::Relaxed)
        {
            assert!(
                head_start.elapsed() < Duration::from_secs(20),
                "abuser never built a backlog ({} bytes sent)",
                sent_bytes.load(Ordering::Relaxed)
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut client =
            Client::connect_retry(addr, Duration::from_secs(2), Duration::from_secs(5)).unwrap();
        let truth = oracle.lookup(0x0a00_0001, 950, 950).unwrap();
        let t0 = Instant::now();
        let mut worst = Duration::ZERO;
        for _ in 0..50 {
            let q0 = Instant::now();
            let ans = client
                .query(0x0a00_0001, 950, 950)
                .expect("well-behaved connection starved by a stalled reader");
            worst = worst.max(q0.elapsed());
            assert_eq!(ans.timeout_bits, truth.timeout_bits);
        }
        let elapsed = t0.elapsed();
        // Loose but meaningful: 50 loopback round-trips take milliseconds
        // when the shard is live; the old code never answered at all.
        assert!(
            elapsed < Duration::from_secs(10),
            "50 round-trips took {elapsed:?} next to a stalled reader (worst {worst:?})"
        );

        stop.store(true, Ordering::Relaxed);
        let sent = abuser.join().unwrap();
        assert!(sent > 0, "abuser never got a byte in — test exercised nothing");

        client.shutdown().unwrap();
        let metrics = handle.join();
        assert!(metrics.counter("serve/queries").unwrap_or(0) >= 50);
    });
}

/// Determinism: the exported metrics JSON must be byte-identical whether
/// or not the fault layer sits in the path (with faults disabled), and
/// across shard counts — fault accounting lives entirely in the excluded
/// `faults/` family.
#[test]
fn metrics_json_identical_with_and_without_faultsim() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());

    let run_workload = |shards: usize, through_proxy: bool| -> String {
        let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(shards)).unwrap();
        let server_addr = handle.local_addr();
        let proxy = if through_proxy {
            Some(ChaosProxy::start(server_addr, FaultCfg::disabled(99)).unwrap())
        } else {
            None
        };
        let target = proxy.as_ref().map_or(server_addr, |p| p.local_addr());

        let mut client =
            Client::connect_retry(target, Duration::from_secs(5), Duration::from_secs(2)).unwrap();
        for i in 0..32u32 {
            client.query(0x0a00_0000 ^ i.wrapping_mul(2654435761), 950, 950).unwrap();
        }
        assert!(client.query(1, 123, 950).is_err());
        client.stats().unwrap();
        drop(client);
        if let Some(p) = proxy {
            p.stop();
            p.join();
        }
        let mut direct =
            Client::connect_retry(server_addr, Duration::from_secs(5), Duration::from_secs(2))
                .unwrap();
        direct.shutdown().unwrap();
        handle.join().to_json()
    };

    let direct = run_workload(1, false);
    let proxied = run_workload(1, true);
    let proxied_sharded = run_workload(4, true);
    assert_eq!(direct, proxied, "a disabled fault layer must be metrics-invisible");
    assert_eq!(proxied, proxied_sharded, "metrics JSON must be shard-count-invariant");
    assert!(direct.contains("serve/queries"));
    assert!(!direct.contains("faults/"), "faults/ must stay out of the JSON export");
}
