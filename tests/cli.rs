//! End-to-end test of the `beware` CLI binary: generate a plan, survey it,
//! analyze the survey, and get a recommendation — all through the same
//! entry points a shell user has.

use std::path::PathBuf;
use std::process::{Command, Output};

fn beware(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_beware"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("beware-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = tempdir("flow");

    // generate
    let out = beware(
        &["generate", "--blocks", "96", "--year", "2015", "--seed", "9", "--out", "plan.tsv"],
        &dir,
    );
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let plan_text = std::fs::read_to_string(dir.join("plan.tsv")).unwrap();
    assert!(plan_text.starts_with("#beware-plan v1"));
    assert!(plan_text.contains("TELEFONICA BRASIL"));

    // survey
    let out = beware(
        &[
            "survey",
            "--plan",
            "plan.tsv",
            "--rounds",
            "12",
            "--sample",
            "24",
            "--seed",
            "9",
            "--out",
            "survey.bwss",
        ],
        &dir,
    );
    assert!(out.status.success(), "survey failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("survey complete"), "{stdout}");

    // analyze
    let out = beware(&["analyze", "--survey", "survey.bwss"], &dir);
    assert!(out.status.success(), "analyze failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("minimum timeout"), "{stdout}");
    assert!(stdout.contains("95%"), "{stdout}");

    // recommend
    let out = beware(&["recommend", "--survey", "survey.bwss", "--timeout", "3"], &dir);
    assert!(out.status.success(), "recommend failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wait"), "{stdout}");
    assert!(stdout.contains("false loss"), "{stdout}");

    // scan
    let out =
        beware(&["scan", "--plan", "plan.tsv", "--duration", "120", "--out", "scan.csv"], &dir);
    assert!(out.status.success(), "scan failed: {}", String::from_utf8_lossy(&out.stderr));
    let csv = std::fs::read_to_string(dir.join("scan.csv")).unwrap();
    assert!(csv.starts_with("probed,responder,rtt_us"));
    assert!(csv.lines().count() > 100, "scan produced too few responses");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_and_missing_flags_fail_cleanly() {
    let dir = tempdir("errs");
    let out = beware(&["frobnicate"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = beware(&["generate"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    let out = beware(&["analyze", "--survey", "does-not-exist.bwss"], &dir);
    assert!(!out.status.success());

    let out = beware(&["help"], &dir);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The oracle-service loop through the CLI: build a snapshot while
/// starting the daemon, query it, run the load generator, and shut it
/// down over the wire.
#[test]
fn serve_query_loadgen_workflow() {
    use std::io::BufRead as _;
    let dir = tempdir("serve");

    let out = beware(
        &["generate", "--blocks", "64", "--year", "2015", "--seed", "7", "--out", "plan.tsv"],
        &dir,
    );
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = beware(
        &[
            "survey",
            "--plan",
            "plan.tsv",
            "--rounds",
            "10",
            "--sample",
            "8",
            "--seed",
            "7",
            "--out",
            "survey.bwss",
        ],
        &dir,
    );
    assert!(out.status.success(), "survey failed: {}", String::from_utf8_lossy(&out.stderr));

    // Start the daemon on an ephemeral port and parse the advertised
    // address from its first stdout line.
    let mut server = std::process::Command::new(env!("CARGO_BIN_EXE_beware"))
        .args([
            "serve",
            "--survey",
            "survey.bwss",
            "--save-snapshot",
            "snap.bwts",
            "--port",
            "0",
            "--shards",
            "2",
            "--metrics",
            "serve-metrics.json",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut reader = std::io::BufReader::new(server.stdout.take().unwrap());
    let host = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "serve exited before listening");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let out = beware(&["query", "--host", &host, "--addr", "198.51.100.9"], &dir);
    assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wait"), "{stdout}");

    let out = beware(
        &[
            "loadgen",
            "--host",
            &host,
            "--snapshot",
            "snap.bwts",
            "--workers",
            "4",
            "--requests",
            "200",
            "--out",
            "BENCH_3.json",
        ],
        &dir,
    );
    assert!(out.status.success(), "loadgen failed: {}", String::from_utf8_lossy(&out.stderr));
    let bench = std::fs::read_to_string(dir.join("BENCH_3.json")).unwrap();
    for key in ["throughput_rps", "\"p50\"", "\"p99\"", "\"p999\""] {
        assert!(bench.contains(key), "BENCH_3.json missing {key}: {bench}");
    }

    let out = beware(&["query", "--host", &host, "--op", "stats"], &dir);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("queries"));

    let out = beware(&["query", "--host", &host, "--op", "shutdown"], &dir);
    assert!(out.status.success(), "shutdown failed: {}", String::from_utf8_lossy(&out.stderr));
    let status = server.wait().expect("serve exits");
    assert!(status.success(), "serve exited non-zero");
    let metrics = std::fs::read_to_string(dir.join("serve-metrics.json")).unwrap();
    assert!(metrics.contains("serve/queries"), "{metrics}");

    // A saved snapshot can be served directly.
    let out = beware(&["serve", "--snapshot", "does-not-exist.bwts"], &dir);
    assert!(!out.status.success(), "serve must fail on a missing snapshot");
    assert!(String::from_utf8_lossy(&out.stderr).contains("does-not-exist.bwts"));

    std::fs::remove_dir_all(&dir).ok();
}

/// The mass-connection benchmark through the CLI: `loadgen --conns`
/// starts its own in-process server (no --host, no input files — the
/// built-in fixture snapshot), sweeps idle-pool scales, and writes the
/// BENCH_4.json sweep. Small here; CI's smoke job runs the raised-ulimit
/// 5k-connection version.
#[test]
fn loadgen_mass_mode_writes_bench4() {
    let dir = tempdir("mass");
    let out = beware(
        &[
            "loadgen",
            "--conns",
            "300",
            "--hot-workers",
            "2",
            "--requests",
            "100",
            "--idle-settle",
            "0.2",
            "--shards",
            "2",
            "--out",
            "BENCH_4.json",
        ],
        &dir,
    );
    assert!(out.status.success(), "mass loadgen failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("in-process oracle"), "{stdout}");
    assert!(stdout.contains("idle conns"), "{stdout}");

    let bench = std::fs::read_to_string(dir.join("BENCH_4.json")).unwrap();
    for key in [
        "\"bench\": \"serve_mass_conns\"",
        "\"conns\": 300",
        "\"conns_per_shard\"",
        "\"idle_cpu_pct\"",
        "\"cpu_per_request_us\"",
        "\"throughput_rps\"",
        "\"p999\"",
    ] {
        assert!(bench.contains(key), "BENCH_4.json missing {key}: {bench}");
    }
    // The sweep records multiple scales (100, 150, 300 for --conns 300).
    assert!(bench.matches("\"conns\":").count() >= 2, "sweep recorded one scale only: {bench}");

    // Bad scale rejected cleanly.
    let out = beware(&["loadgen", "--conns", "0"], &dir);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// Exit codes for the service subcommands' failure modes.
#[test]
fn serve_subcommand_errors_fail_cleanly() {
    let dir = tempdir("serve-errs");
    // No snapshot source at all.
    let out = beware(&["serve"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--snapshot"));

    // Unreachable server: query and loadgen must fail, not hang.
    let out = beware(&["query", "--host", "127.0.0.1:1", "--addr", "10.0.0.1"], &dir);
    assert!(!out.status.success());

    let out = beware(&["query", "--host", "not-an-address"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--host"));

    let out = beware(&["loadgen", "--host", "127.0.0.1:1", "--requests", "1"], &dir);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_outputs_are_deterministic() {
    let dir = tempdir("det");
    for name in ["a.tsv", "b.tsv"] {
        let out = beware(&["generate", "--blocks", "64", "--seed", "4", "--out", name], &dir);
        assert!(out.status.success());
    }
    let a = std::fs::read(dir.join("a.tsv")).unwrap();
    let b = std::fs::read(dir.join("b.tsv")).unwrap();
    assert_eq!(a, b, "same seed must produce identical plans");
    std::fs::remove_dir_all(&dir).ok();
}

/// The hot-reload admin surface through the CLI: serve with a reload
/// source, inspect the snapshot over the wire, build a delta offline
/// with `admin --op diff`, and walk the version forward with full and
/// delta reloads.
#[test]
fn admin_info_reload_and_diff_workflow() {
    use beware::analysis::percentile::LatencySamples;
    use beware::dataset::snapshot::{snapshot_checksum, write_snapshot};
    use beware::serve::{build_snapshot, SnapshotCfg};
    use std::collections::BTreeMap;
    use std::io::BufRead as _;

    let dir = tempdir("admin");
    // Two snapshot generations, written straight from the library — the
    // CLI only has to move them around.
    let snap_for = |scale: f64| {
        let mut samples = BTreeMap::new();
        for i in 0..10u32 {
            samples.insert(
                0x0a00_0000 + (i << 8) + 1,
                LatencySamples::from_values((1..=8).map(|v| scale * 0.02 * f64::from(v)).collect()),
            );
        }
        build_snapshot(&samples, &SnapshotCfg::default()).unwrap()
    };
    let (gen0, gen1) = (snap_for(1.0), snap_for(1.4));
    for (name, snap) in [("gen0.bwts", &gen0), ("gen1.bwts", &gen1)] {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, snap).unwrap();
        std::fs::write(dir.join(name), buf).unwrap();
    }
    // The reload source starts as generation 0 (what is being served).
    std::fs::copy(dir.join("gen0.bwts"), dir.join("source.snap")).unwrap();

    let mut server = std::process::Command::new(env!("CARGO_BIN_EXE_beware"))
        .args([
            "serve",
            "--snapshot",
            "gen0.bwts",
            "--reload-from",
            "source.snap",
            "--port",
            "0",
            "--shards",
            "1",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut reader = std::io::BufReader::new(server.stdout.take().unwrap());
    let host = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "serve exited before listening");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let out = beware(&["admin", "--op", "info", "--host", &host], &dir);
    assert!(out.status.success(), "info failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("version 1"), "{stdout}");
    assert!(stdout.contains(&format!("{:016x}", snapshot_checksum(&gen0))), "{stdout}");

    // Offline delta build, then: full reload to gen1, delta is now stale.
    let out = beware(
        &[
            "admin",
            "--op",
            "diff",
            "--base",
            "gen0.bwts",
            "--target",
            "gen1.bwts",
            "--out",
            "delta.bwtd",
        ],
        &dir,
    );
    assert!(out.status.success(), "diff failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("upserts"));

    std::fs::copy(dir.join("gen1.bwts"), dir.join("source.snap")).unwrap();
    let out = beware(&["admin", "--op", "reload", "--host", &host], &dir);
    assert!(out.status.success(), "reload failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("version 2"), "{stdout}");
    assert!(stdout.contains(&format!("{:016x}", snapshot_checksum(&gen1))), "{stdout}");

    // The delta's base (gen0) is no longer serving: a delta reload must
    // fail and leave the version alone.
    std::fs::copy(dir.join("delta.bwtd"), dir.join("source.snap")).unwrap();
    let out = beware(&["admin", "--op", "reload", "--kind", "delta", "--host", &host], &dir);
    assert!(!out.status.success(), "stale delta must fail");
    let out = beware(&["admin", "--op", "info", "--host", &host], &dir);
    assert!(String::from_utf8_lossy(&out.stdout).contains("version 2"));

    let out = beware(&["query", "--host", &host, "--op", "shutdown"], &dir);
    assert!(out.status.success());
    assert!(server.wait().expect("serve exits").success());
    std::fs::remove_dir_all(&dir).ok();
}

/// Failure classes surface as distinct exit codes: usage/config = 2,
/// missing files = 3, corrupt snapshots = 4.
#[test]
fn exit_codes_distinguish_failure_classes() {
    let dir = tempdir("codes");

    // Usage: unknown command, unknown flag value, invalid server config.
    assert_eq!(beware(&["frobnicate"], &dir).status.code(), Some(2));
    assert_eq!(beware(&["serve"], &dir).status.code(), Some(2), "no snapshot source");
    assert_eq!(
        beware(&["generate", "--blocks", "not-a-number", "--out", "p.tsv"], &dir).status.code(),
        Some(2)
    );
    assert_eq!(
        beware(&["serve", "--snapshot", "x.bwts", "--reload-poll", "5"], &dir).status.code(),
        Some(2),
        "--reload-poll without --reload-from is a usage error"
    );
    assert_eq!(beware(&["admin", "--op", "bogus"], &dir).status.code(), Some(2));

    // I/O: files that do not exist.
    assert_eq!(beware(&["serve", "--snapshot", "missing.bwts"], &dir).status.code(), Some(3));
    assert_eq!(beware(&["analyze", "--survey", "missing.bwss"], &dir).status.code(), Some(3));
    assert_eq!(
        beware(
            &["admin", "--op", "diff", "--base", "a.bwts", "--target", "b.bwts", "--out", "d"],
            &dir
        )
        .status
        .code(),
        Some(3)
    );

    // Corrupt: bytes exist but do not decode.
    std::fs::write(dir.join("bad.bwts"), b"BWTSgarbage that is not a snapshot").unwrap();
    assert_eq!(beware(&["serve", "--snapshot", "bad.bwts"], &dir).status.code(), Some(4));
    std::fs::write(dir.join("bad.bwss"), b"not a survey stream either").unwrap();
    assert_eq!(beware(&["analyze", "--survey", "bad.bwss"], &dir).status.code(), Some(4));

    std::fs::remove_dir_all(&dir).ok();
}

/// `shootout --list-policies` enumerates the policy registry, and
/// `serve --policy` rejects names that are not in it as a usage error —
/// before any snapshot work happens.
#[test]
fn policy_flags_validate_against_the_registry() {
    let dir = tempdir("policy-flags");

    let out = beware(&["shootout", "--list-policies"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["jacobson-karn", "exp-backoff", "codel-quantile", "oracle"] {
        assert!(stdout.contains(name), "--list-policies is missing {name}: {stdout}");
    }

    let out = beware(&["serve", "--policy", "bogus"], &dir);
    assert_eq!(out.status.code(), Some(2), "unknown policy is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"), "{stderr}");
    assert!(stderr.contains("jacobson-karn"), "the error should list valid names: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The committed BENCH_6 contract, end to end: the shootout CLI writes
/// byte-identical reports and telemetry for any `--threads` value.
#[test]
fn shootout_cli_is_thread_count_invariant() {
    let dir = tempdir("shootout");

    let run = |threads: &str, out: &str, metrics: &str| {
        let o = beware(
            &[
                "shootout",
                "--blocks",
                "2",
                "--rounds",
                "8",
                "--round-secs",
                "30",
                "--seed",
                "13",
                "--threads",
                threads,
                "--out",
                out,
                "--metrics",
                metrics,
            ],
            &dir,
        );
        assert!(o.status.success(), "shootout failed: {}", String::from_utf8_lossy(&o.stderr));
        String::from_utf8_lossy(&o.stdout).into_owned()
    };
    let stdout_1 = run("1", "a.json", "a-metrics.json");
    let stdout_3 = run("3", "b.json", "b-metrics.json");

    let a = std::fs::read(dir.join("a.json")).unwrap();
    let b = std::fs::read(dir.join("b.json")).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "BENCH_6 differs between --threads 1 and --threads 3");
    let am = std::fs::read(dir.join("a-metrics.json")).unwrap();
    let bm = std::fs::read(dir.join("b-metrics.json")).unwrap();
    assert_eq!(am, bm, "shootout telemetry differs between thread counts");

    // The report names every policy on every scenario.
    let text = String::from_utf8(a).unwrap();
    assert!(text.contains("\"bench\": \"policy_shootout\""));
    for name in ["jacobson-karn", "exp-backoff", "codel-quantile", "oracle"] {
        assert!(text.contains(name), "BENCH_6 is missing {name}");
    }
    for scenario in ["steady", "covid_step", "diurnal_drift"] {
        assert!(text.contains(scenario), "BENCH_6 is missing scenario {scenario}");
    }
    // The summary lines (the stdout contract) are sim-derived too.
    assert_eq!(
        stdout_1.lines().filter(|l| l.contains("cost")).count(),
        stdout_3.lines().filter(|l| l.contains("cost")).count()
    );

    std::fs::remove_dir_all(&dir).ok();
}
