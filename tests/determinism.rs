//! Reproducibility guarantees: the same seed must produce byte-identical
//! datasets through the entire stack, and different seeds must not.

use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::dataset::{binfmt, ScanMeta};
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;

fn scenario(seed: u64) -> Scenario {
    Scenario::new(ScenarioCfg { year: 2015, seed, total_blocks: 48, vantage: VANTAGES[0] })
}

fn survey_records(seed: u64) -> Vec<beware::dataset::Record> {
    let sc = scenario(seed);
    let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).take(12).collect();
    let cfg = SurveyCfg { blocks, rounds: 8, seed, ..Default::default() };
    let mut world = sc.build_world();
    cfg.build(Vec::new()).run(&mut world).0 .0
}

#[test]
fn same_seed_identical_survey_bytes() {
    let a = survey_records(7);
    let b = survey_records(7);
    assert_eq!(a, b);
    let mut ba = Vec::new();
    let mut bb = Vec::new();
    binfmt::write_records(&mut ba, &a).unwrap();
    binfmt::write_records(&mut bb, &b).unwrap();
    assert_eq!(ba, bb, "binary serialization must be byte-identical");
}

#[test]
fn different_seed_different_survey() {
    let a = survey_records(7);
    let b = survey_records(8);
    assert_ne!(a, b);
}

#[test]
fn survey_binary_roundtrip_preserves_pipeline_output() {
    let records = survey_records(11);
    let mut bytes = Vec::new();
    binfmt::write_records(&mut bytes, &records).unwrap();
    let restored = binfmt::read_records(&mut &bytes[..]).unwrap();
    assert_eq!(records, restored);
    let a = run_pipeline(&records, &PipelineCfg::default());
    let b = run_pipeline(&restored, &PipelineCfg::default());
    assert_eq!(a.accounting, b.accounting);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn same_seed_identical_zmap_scan() {
    let run = |seed| {
        let sc = scenario(5);
        let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).collect();
        let cfg = ZmapCfg {
            blocks,
            duration_secs: 120.0,
            cooldown_secs: 60.0,
            seed,
            ..Default::default()
        };
        let meta = ScanMeta { label: "d".into(), day: "Mon".into(), begin: "00:00".into() };
        let mut world = sc.build_world();
        cfg.build(meta).run(&mut world).0
    };
    assert_eq!(run(3).records, run(3).records);
    assert_ne!(run(3).records, run(4).records);
}

#[test]
fn text_and_binary_codecs_agree() {
    use beware::dataset::textfmt;
    let records = survey_records(13);
    let text = textfmt::to_text(&records);
    let from_text = textfmt::from_text(&text).unwrap();
    assert_eq!(records, from_text);
}

/// Every file a campaign writes, name → bytes.
fn dir_contents(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut out = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir readable") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 file name");
        out.insert(name, std::fs::read(entry.path()).expect("file readable"));
    }
    out
}

fn run_campaign(out_dir: &std::path::Path, threads: u32) {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_beware"))
        .args(["campaign", "--threads", &threads.to_string()])
        .args(["--blocks", "48", "--survey-blocks", "12", "--rounds", "12", "--scans", "4"])
        .arg("--out")
        .arg(out_dir)
        .status()
        .expect("campaign runs");
    assert!(status.success(), "campaign --threads {threads} failed");
}

/// The parallel-determinism contract, end to end: `--threads 4` must
/// produce byte-identical datasets and reports to `--threads 1` (the
/// serial reference path). See `beware::netsim::exec` for the contract
/// and DESIGN.md §6 for the seed-derivation scheme.
#[test]
fn parallel_matches_serial() {
    let base = std::env::temp_dir().join(format!("beware-determinism-{}", std::process::id()));
    let serial_dir = base.join("threads1");
    let parallel_dir = base.join("threads4");
    run_campaign(&serial_dir, 1);
    run_campaign(&parallel_dir, 4);

    let serial = dir_contents(&serial_dir);
    let parallel = dir_contents(&parallel_dir);
    assert!(
        serial.keys().any(|n| n.starts_with("scan_")),
        "campaign wrote no scans: {:?}",
        serial.keys().collect::<Vec<_>>()
    );
    assert!(serial.contains_key("survey_w.bwss") && serial.contains_key("report.txt"));
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "file sets differ"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name} differs between --threads 1 and --threads 4"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}
