//! Cross-crate behavior tests: wire-level fidelity of simulated packets,
//! the zmap payload path, and end-to-end analysis invariants on worlds
//! with specific behavior compositions.

use beware::analysis::pipeline::{run_pipeline, survey_samples, PipelineCfg};
use beware::analysis::recommend;
use beware::netsim::packet::{Packet, L4};
use beware::netsim::profile::{BlockProfile, WakeupCfg};
use beware::netsim::rng::Dist;
use beware::netsim::world::World;
use beware::probe::prelude::*;
use beware::wire::payload::ProbePayload;
use std::sync::Arc;

fn quiet() -> BlockProfile {
    BlockProfile {
        base_rtt: Dist::Constant(0.05),
        jitter: Dist::Constant(0.0),
        density: 1.0,
        response_prob: 1.0,
        error_prob: 0.0,
        dup_prob: 0.0,
        ..Default::default()
    }
}

#[test]
fn simulated_packets_are_valid_wire_bytes() {
    // Every packet the world emits must encode to parseable, checksummed
    // bytes and decode back identically.
    let mut w = World::new(3);
    w.add_block(0x0a0000, Arc::new(quiet()));
    let probe = Packet::echo_request(0x01010101, 0x0a000010, 7, 1, vec![0xaa; 24]);
    let arrivals = w.probe(&probe, beware::netsim::SimTime::EPOCH);
    assert!(!arrivals.is_empty());
    for a in arrivals {
        let bytes = a.pkt.encode();
        let back = Packet::decode(&bytes).expect("world emits valid packets");
        assert_eq!(back, a.pkt);
    }
}

#[test]
fn zmap_payload_roundtrips_through_the_world() {
    // The payload embedding must survive the echo: a broadcast responder's
    // reply still carries the *original* destination.
    let mut w = World::new(3);
    w.add_block(
        0x0a0000,
        Arc::new(BlockProfile {
            broadcast: Some(beware::netsim::profile::BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..quiet()
        }),
    );
    let key = 0x1234;
    let payload = ProbePayload { dest: 0x0a0000ff, send_ns: 55_000 }.encode(key);
    let probe = Packet::echo_request(0x01010101, 0x0a0000ff, 7, 1, payload.to_vec());
    let arrivals = w.probe(&probe, beware::netsim::SimTime::EPOCH);
    assert!(arrivals.len() > 100, "broadcast should fan out");
    for a in &arrivals {
        let L4::Icmp { payload, .. } = &a.pkt.l4 else { panic!("icmp expected") };
        let p = ProbePayload::decode(payload, key).expect("embedding survives");
        assert_eq!(p.dest, 0x0a0000ff, "embedded destination preserved");
        assert_ne!(a.pkt.src, 0x0a0000ff, "response sourced from the responder");
    }
}

#[test]
fn wakeup_world_shows_eleven_minute_survey_pattern() {
    // With an 11-minute probing interval, every probe to a wake-up host
    // finds the radio idle: the survey-detected latency distribution sits
    // at base + wake-up, not at base.
    let mut w = World::new(9);
    w.add_block(
        0x0a0000,
        Arc::new(BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 1.0, delay: Dist::Constant(1.5), tail_secs: 10.0 }),
            ..quiet()
        }),
    );
    let cfg = SurveyCfg { blocks: vec![0x0a0000], rounds: 4, ..Default::default() };
    let ((records, stats), _) = cfg.build(Vec::new()).run(&mut w);
    assert_eq!(stats.matched, 254 * 4);
    let samples = survey_samples(&records);
    for s in samples.values() {
        let median = s.percentile(50.0).unwrap();
        assert!((median - 1.55).abs() < 0.01, "median {median}");
    }
}

#[test]
fn recommendation_api_flags_short_timeouts_on_slow_worlds() {
    // A world where every host answers at 4 s: a 3 s timeout implies 100%
    // false loss, a 60 s timeout implies none; the recommended 95/95
    // timeout exceeds 4 s.
    let mut w = World::new(1);
    w.add_block(0x0a0000, Arc::new(BlockProfile { base_rtt: Dist::Constant(4.0), ..quiet() }));
    let cfg = SurveyCfg { blocks: vec![0x0a0000], rounds: 3, ..Default::default() };
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut w);
    let out = run_pipeline(&records, &PipelineCfg::default());
    // All matched-as-delayed (4 s > 3 s window → timeout + unmatched).
    assert!(out.accounting.survey_detected.packets == 0);
    assert!(out.accounting.survey_plus_delayed.packets > 0);
    let rec = recommend::recommend_timeout(&out.samples, 95.0, 95.0).unwrap();
    assert!(rec.timeout_secs >= 4.0, "recommended {}", rec.timeout_secs);
    let affected = recommend::addresses_with_false_loss_above(&out.samples, 3.0, 0.05);
    assert!((affected - 1.0).abs() < 1e-9, "3 s timeout must fail everyone: {affected}");
    assert_eq!(recommend::addresses_with_false_loss_above(&out.samples, 60.0, 0.05), 0.0);
}

#[test]
fn icmp_error_addresses_do_not_enter_latency_analysis() {
    let mut w = World::new(4);
    w.add_block(0x0a0000, Arc::new(BlockProfile { error_prob: 1.0, ..quiet() }));
    let cfg = SurveyCfg { blocks: vec![0x0a0000], rounds: 2, ..Default::default() };
    let ((records, stats), _) = cfg.build(Vec::new()).run(&mut w);
    assert!(stats.errors > 0);
    let out = run_pipeline(&records, &PipelineCfg::default());
    assert!(out.samples.is_empty(), "error-only addresses must yield no samples");
}

#[test]
fn mixed_world_pipeline_is_internally_consistent() {
    // Compose several behaviors in one world and check global invariants.
    let mut w = World::new(77);
    w.add_block(0x0a0000, Arc::new(quiet()));
    w.add_block(
        0x0a0001,
        Arc::new(BlockProfile {
            wakeup: Some(WakeupCfg::default()),
            response_prob: 0.9,
            ..quiet()
        }),
    );
    w.add_block(
        0x0a0002,
        Arc::new(BlockProfile {
            broadcast: Some(beware::netsim::profile::BroadcastCfg {
                responder_prob: 0.05,
                edge_responder_prob: 0.9,
                unicast_silent_prob: 0.8,
                network_addr_responds: true,
            }),
            density: 0.4,
            ..quiet()
        }),
    );
    let cfg =
        SurveyCfg { blocks: vec![0x0a0000, 0x0a0001, 0x0a0002], rounds: 30, ..Default::default() };
    let ((records, stats), _) = cfg.build(Vec::new()).run(&mut w);
    let out = run_pipeline(&records, &PipelineCfg::default());
    // Sample counts never exceed probe counts.
    let total_samples: usize = out.samples.values().map(|s| s.len()).sum();
    assert!(total_samples as u64 <= stats.probes() + stats.unmatched);
    // Filtered addresses are genuinely excluded.
    for addr in &out.broadcast_responders {
        assert!(!out.samples.contains_key(addr));
    }
    // Every surviving address has at least one sample.
    assert!(out.samples.values().all(|s| !s.is_empty()));
}
