//! Integration tests for the online adaptive-timeout subsystem
//! (`beware-policy`) and its serve-path wiring:
//!
//! * the frozen [`OracleTable`] adapter answers **bit-for-bit** like the
//!   offline `recommend_timeout` computation and the served oracle,
//! * a `--policy` server adapts its answers to loadgen-reported RTTs,
//!   while a snapshot-only server rejects `Report` frames with a typed
//!   error,
//! * the shootout replays hours of simulated campaign time in seconds
//!   of wall clock — the whole harness runs on virtual time.

use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::recommend::recommend_timeout;
use beware::analysis::LatencySamples;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::policy::{shootout, OracleTable, PolicyKind, ShootoutCfg, INITIAL_TIMEOUT_SECS};
use beware::probe::prelude::*;
use beware::serve::proto::ErrorCode;
use beware::serve::{build_snapshot, server, Client, ClientError, Oracle, SnapshotCfg, Status};
use beware::telemetry::Registry;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated campaign → filtered per-address samples (the serve test
/// fixture, reused so the snapshot is non-trivial).
fn campaign_samples() -> BTreeMap<u32, LatencySamples> {
    let sc =
        Scenario::new(ScenarioCfg { year: 2015, seed: 11, total_blocks: 48, vantage: VANTAGES[0] });
    let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).take(12).collect();
    let cfg = SurveyCfg { blocks, rounds: 10, seed: 11, ..Default::default() };
    let mut world = sc.build_world();
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut world);
    run_pipeline(&records, &PipelineCfg::default()).samples
}

/// The frozen adapter must answer exactly like the offline analysis and
/// the served oracle — same LPM walk, same fallback, same bits.
#[test]
fn oracle_adapter_bit_matches_offline_and_served_oracle() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    assert!(!snap.entries.is_empty(), "campaign produced no per-prefix tables");
    let table = OracleTable::from_snapshot(&snap, 950, 950).unwrap();
    let oracle = Oracle::from_snapshot(snap.clone()).unwrap();

    // Every covered prefix (a few offsets deep) and a pseudorandom salt
    // of mostly-fallback addresses: the adapter and the server must give
    // the same bits everywhere.
    let mut probes: Vec<u32> = Vec::new();
    for e in &snap.entries {
        probes.extend([e.prefix, e.prefix | 0x7, e.prefix | 0xff]);
    }
    let mut state = 0x5eed_f00du64;
    for _ in 0..256 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        probes.push((state >> 32) as u32);
    }
    let mut fallbacks = 0u32;
    for addr in probes {
        let truth = oracle.lookup(addr, 950, 950).expect("950/950 is a grid cell");
        assert_eq!(
            table.timeout_bits(addr),
            truth.timeout_bits,
            "adapter disagrees with the served oracle at {addr:#010x}"
        );
        if truth.status == Status::Fallback {
            fallbacks += 1;
            // The fallback cell is the paper's global recommendation.
            let rec = recommend_timeout(&samples, 95.0, 95.0).expect("samples are non-empty");
            assert_eq!(table.timeout_bits(addr), rec.timeout_secs.to_bits());
        }
    }
    assert!(fallbacks > 0, "salt produced no fallback lookups");
}

fn policy_server_cfg(kind: Option<PolicyKind>) -> server::ServerCfg {
    let mut b =
        server::ServerCfg::builder().shards(2).idle_timeout(Duration::from_secs(30)).metrics(false);
    if let Some(kind) = kind {
        b = b.policy(kind);
    }
    b.build().unwrap()
}

/// A `--policy` server starts out quoting the conventional initial
/// timeout, then adapts once reported RTTs reach the publish cadence.
#[test]
fn policy_server_adapts_to_reported_rtts() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());
    let handle =
        server::start(oracle, "127.0.0.1:0", policy_server_cfg(Some(PolicyKind::JacobsonKarn)))
            .unwrap();
    let mut client =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(2))
            .unwrap();

    let addr = 0x0a01_0203u32;
    // No reports yet: the published table is empty, so the answer is the
    // fallback initial timeout — not the snapshot's.
    let ans = client.query(addr, 950, 950).unwrap();
    assert_eq!(ans.status, Status::Fallback);
    assert_eq!(ans.timeout_bits, INITIAL_TIMEOUT_SECS.to_bits());

    // Feed one publish interval of steady 120 ms RTTs.
    let mut acked = 0;
    for _ in 0..64 {
        acked = client.report(addr, 120_000).unwrap();
    }
    assert_eq!(acked, 64, "every report acknowledged");

    let ans = client.query(addr, 950, 950).unwrap();
    assert_eq!(ans.status, Status::Exact, "the reported prefix now has its own estimator");
    assert_eq!(ans.prefix, addr & 0xffff_ff00);
    assert_eq!(ans.prefix_len, 24);
    assert!(
        ans.timeout_secs < INITIAL_TIMEOUT_SECS && ans.timeout_secs > 0.12,
        "Jacobson/Karn on steady 120 ms RTTs should quote between the RTT and the \
         initial 3 s, got {}",
        ans.timeout_secs
    );

    client.shutdown().unwrap();
    handle.join();
}

/// Cold start: the very first report must publish a table. Low-traffic
/// prefixes may never reach the 64-report publish cadence, so a
/// cadence-only publish leaves readers on the empty boot table
/// indefinitely — this failed before the first-report publish landed.
#[test]
fn single_report_becomes_visible_to_queries() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());
    let handle =
        server::start(oracle, "127.0.0.1:0", policy_server_cfg(Some(PolicyKind::JacobsonKarn)))
            .unwrap();
    let mut client =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(2))
            .unwrap();

    let addr = 0x0a01_0203u32;
    assert_eq!(client.report(addr, 120_000).unwrap(), 1);

    let ans = client.query(addr, 950, 950).unwrap();
    assert_eq!(ans.status, Status::Exact, "one report must already publish its prefix");
    assert_eq!(ans.prefix, addr & 0xffff_ff00);
    assert_ne!(
        ans.timeout_bits,
        INITIAL_TIMEOUT_SECS.to_bits(),
        "the answer must come from the estimator, not the empty boot table"
    );

    client.shutdown().unwrap();
    handle.join();
}

/// A snapshot-only server answers `Report` with a typed error — and the
/// connection survives it (a server-level error is not a framing fault).
#[test]
fn snapshot_server_rejects_reports_with_typed_error() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());
    let handle = server::start(oracle, "127.0.0.1:0", policy_server_cfg(None)).unwrap();
    let mut client =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(2))
            .unwrap();

    match client.report(0x0a01_0203, 120_000) {
        Err(ClientError::Server(ErrorCode::PolicyUnavailable)) => {}
        other => panic!("expected PolicyUnavailable, got {other:?}"),
    }
    // Same connection still answers queries.
    client.query(0x0a01_0203, 950, 950).unwrap();

    client.shutdown().unwrap();
    handle.join();
}

/// The whole shootout runs on virtual time: a hundred thousand simulated
/// seconds — about 33 hours of campaign — must replay in wall-clock
/// seconds, not hours.
#[test]
fn shootout_covers_hours_of_virtual_time_in_seconds() {
    let build: shootout::SnapshotBuild<'_> = &|samples, addr_t, ping_t| {
        let cfg = SnapshotCfg {
            addr_pct_tenths: vec![addr_t],
            ping_pct_tenths: vec![ping_t],
            ..Default::default()
        };
        build_snapshot(samples, &cfg).map_err(|e| e.to_string())
    };
    let t0 = Instant::now();
    // 40 rounds x 1000 s per round x 3 scenarios = 120k simulated seconds.
    let cfg = ShootoutCfg::standard(3, 4, 40, 1000.0, 2);
    let report = shootout::run(&cfg, build, &mut Registry::disabled()).unwrap();
    let wall = t0.elapsed();

    let sim_secs: f64 = report.scenarios.iter().map(|s| s.sim_span_secs).sum();
    assert!(sim_secs >= 100_000.0, "expected 100k+ simulated seconds, got {sim_secs}");
    assert_eq!(report.scenarios.len(), 3);
    for sc in &report.scenarios {
        assert_eq!(sc.scores.len(), PolicyKind::ALL.len(), "{} is missing a policy", sc.name);
    }
    assert!(
        wall < Duration::from_secs(60),
        "virtual-time shootout took {wall:?} of wall clock for {sim_secs} simulated seconds"
    );
}
