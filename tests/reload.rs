//! Zero-downtime snapshot reload, proven end to end: the oracle is
//! hot-swapped — over the wire, full and delta, and straight through the
//! in-process [`OracleHandle`] — while clients hammer the query path,
//! and **every** answer must byte-match some snapshot generation that
//! could legitimately have been serving. A reply mixing two generations
//! (a torn read) matches none and fails the suite.

use beware::analysis::percentile::LatencySamples;
use beware::dataset::snapshot::{
    diff_snapshot, snapshot_checksum, write_delta, write_snapshot, TimeoutSnapshot,
};
use beware::serve::{
    build_snapshot, loadgen, server, Client, ClientError, ErrorCode, Oracle, ReloadKind,
    SnapshotCfg,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Generation `gen` of a hand-built snapshot: successive generations
/// shift every latency (changed cells → upserts), retire one /24 and
/// introduce another (removal + insertion), so a delta between any two
/// neighbours carries every kind of change.
fn snapshot_gen(gen: u32) -> TimeoutSnapshot {
    let mut samples = BTreeMap::new();
    for block in 0..10u32 {
        if block == gen % 10 && gen > 0 {
            continue; // retired this generation
        }
        let base = 0x0a00_0000 + (block << 8);
        for host in 1..=6u32 {
            let scale = 1.0 + f64::from(gen) * 0.13 + f64::from(block) * 0.01;
            samples.insert(
                base + host,
                LatencySamples::from_values(
                    (1..=8).map(|i| scale * 0.02 * f64::from(i) * f64::from(host)).collect(),
                ),
            );
        }
    }
    // A generation-specific block, so deltas also insert.
    let fresh = 0x0a01_0000 + (gen << 8);
    for host in 1..=6u32 {
        samples.insert(
            fresh + host,
            LatencySamples::from_values((1..=8).map(|i| 0.03 * f64::from(i * host)).collect()),
        );
    }
    build_snapshot(&samples, &SnapshotCfg::default()).unwrap()
}

fn oracle_gen(gen: u32) -> Oracle {
    Oracle::from_snapshot(snapshot_gen(gen)).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("beware-reload-test-{tag}-{}.snap", std::process::id()))
}

fn write_full(path: &PathBuf, snap: &TimeoutSnapshot) {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, snap).unwrap();
    std::fs::write(path, buf).unwrap();
}

fn reload_cfg(truth: Vec<Oracle>, reloads: usize) -> loadgen::ReloadCfg {
    // Pool mixing exact-prefix hits and fallback misses.
    let mut addr_pool: Vec<u32> = Vec::new();
    for block in 0..12u32 {
        addr_pool.push(0x0a00_0000 + (block << 8) + 3);
    }
    addr_pool.extend([0xc0a8_0101, 0x0808_0808]);
    loadgen::ReloadCfg {
        workers: 4,
        addr_pool,
        reloads,
        reload_gap: Duration::from_millis(50),
        cooldown: Duration::from_millis(50),
        truth,
        ..Default::default()
    }
}

/// The tentpole proof: four hot swaps — alternating full and delta —
/// land mid-load, and every reply issued anywhere in the run byte-matches
/// one coherent snapshot generation. The server's own books must agree:
/// four reloads counted, zero failures, and the version gauge at 5.
#[test]
fn hot_reload_under_load_never_tears_an_answer() {
    const RELOADS: usize = 4;
    let snaps: Vec<TimeoutSnapshot> = (0..=RELOADS as u32).map(snapshot_gen).collect();
    let truth: Vec<Oracle> =
        snaps.iter().map(|s| Oracle::from_snapshot(s.clone()).unwrap()).collect();

    let source = temp_path("underload");
    write_full(&source, &snaps[0]);
    let cfg = server::ServerCfg::builder()
        .shards(2)
        .idle_timeout(Duration::from_secs(60))
        .metrics(true)
        .reload_from(&source)
        .build()
        .unwrap();
    let handle =
        server::start(Oracle::from_snapshot(snaps[0].clone()).unwrap(), "127.0.0.1:0", cfg)
            .unwrap();
    let addr = handle.local_addr();

    let mut admin =
        Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(5)).unwrap();
    let report = loadgen::run_reload(addr, &reload_cfg(truth, RELOADS), |i| {
        let target = &snaps[i + 1];
        let kind = if i % 2 == 0 {
            write_full(&source, target);
            ReloadKind::Full
        } else {
            let delta = diff_snapshot(&snaps[i], target).map_err(|e| e.to_string())?;
            let mut buf = Vec::new();
            write_delta(&mut buf, &delta).map_err(|e| e.to_string())?;
            std::fs::write(&source, buf).map_err(|e| e.to_string())?;
            ReloadKind::Delta
        };
        let info = admin.reload(kind).map_err(|e| format!("reload {i}: {e}"))?;
        if info.checksum != snapshot_checksum(target) {
            return Err(format!("reload {i} landed on the wrong snapshot"));
        }
        Ok(())
    })
    .unwrap();

    handle.shutdown();
    let metrics = handle.join();
    std::fs::remove_file(&source).ok();

    assert_eq!(report.wrong_answers, 0, "a reply matched no snapshot generation: torn read");
    assert_eq!(report.errors, 0, "reloads must not fail queries in flight");
    assert_eq!(report.reloads as usize, RELOADS);
    assert!(report.requests > 0);
    assert_eq!(metrics.counter("oracle/reloads"), Some(RELOADS as u64));
    assert_eq!(metrics.counter("oracle/reload_failures").unwrap_or(0), 0, "no failed reloads");
    assert_eq!(metrics.counter("oracle/stale_delta_rejected").unwrap_or(0), 0);
}

/// The wire surface itself: `SnapshotInfo` reports the serving identity;
/// `Reload` walks the version forward on success and leaves it untouched
/// on every rejection — no source, corrupt bytes, stale delta — with the
/// matching typed error code on the wire and the matching counters in
/// the registry.
#[test]
fn wire_admin_ops_succeed_and_reject_with_typed_codes() {
    // A server with no reload source refuses the op outright.
    let cfg = server::ServerCfg::builder().shards(1).metrics(true).build().unwrap();
    let handle = server::start(oracle_gen(0), "127.0.0.1:0", cfg).unwrap();
    let mut c =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(5))
            .unwrap();
    let info = c.snapshot_info().unwrap();
    assert_eq!(info.version, 1);
    assert_eq!(info.checksum, snapshot_checksum(&snapshot_gen(0)));
    assert_eq!(u64::from(info.entries), u64::try_from(oracle_gen(0).entry_count()).unwrap());
    match c.reload(ReloadKind::Full) {
        Err(ClientError::Server(ErrorCode::ReloadUnavailable)) => {}
        other => panic!("reload without a source must be ReloadUnavailable, got {other:?}"),
    }
    handle.shutdown();
    handle.join();

    // With a source: corrupt bytes and stale deltas are rejected without
    // moving the version; good full and delta reloads walk it forward.
    let source = temp_path("wireops");
    std::fs::write(&source, b"BWTSnot a snapshot at all").unwrap();
    let cfg =
        server::ServerCfg::builder().shards(1).metrics(true).reload_from(&source).build().unwrap();
    let handle = server::start(oracle_gen(0), "127.0.0.1:0", cfg).unwrap();
    let mut c =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(5))
            .unwrap();

    match c.reload(ReloadKind::Full) {
        Err(ClientError::Server(ErrorCode::SnapshotRejected)) => {}
        other => panic!("corrupt snapshot must be SnapshotRejected, got {other:?}"),
    }
    assert_eq!(c.snapshot_info().unwrap().version, 1, "rejected reload must not bump");

    // A delta computed between two *other* generations: stale base.
    let stale = diff_snapshot(&snapshot_gen(1), &snapshot_gen(2)).unwrap();
    let mut buf = Vec::new();
    write_delta(&mut buf, &stale).unwrap();
    std::fs::write(&source, &buf).unwrap();
    match c.reload(ReloadKind::Delta) {
        Err(ClientError::Server(ErrorCode::StaleDelta)) => {}
        other => panic!("stale delta must be StaleDelta, got {other:?}"),
    }

    // Full reload to generation 1, then the (now fresh) delta to 2.
    write_full(&source, &snapshot_gen(1));
    let info = c.reload(ReloadKind::Full).unwrap();
    assert_eq!(info.version, 2);
    assert_eq!(info.checksum, snapshot_checksum(&snapshot_gen(1)));
    std::fs::write(&source, &buf).unwrap();
    let info = c.reload(ReloadKind::Delta).unwrap();
    assert_eq!(info.version, 3);
    assert_eq!(info.checksum, snapshot_checksum(&snapshot_gen(2)));

    // Replaying the same delta is stale again: its base moved on.
    match c.reload(ReloadKind::Delta) {
        Err(ClientError::Server(ErrorCode::StaleDelta)) => {}
        other => panic!("replayed delta must be StaleDelta, got {other:?}"),
    }

    handle.shutdown();
    let metrics = handle.join();
    std::fs::remove_file(&source).ok();
    assert_eq!(metrics.counter("oracle/reloads"), Some(2));
    assert_eq!(metrics.counter("oracle/reload_failures"), Some(1));
    assert_eq!(metrics.counter("oracle/stale_delta_rejected"), Some(2));
}

/// The in-process swap API: a publish through `ServerHandle::oracle`
/// becomes visible to connected clients — new version, new answers —
/// without any connection churn.
#[test]
fn in_process_publish_swaps_the_serving_oracle() {
    let cfg = server::ServerCfg::builder().shards(1).metrics(true).build().unwrap();
    let handle = server::start(oracle_gen(0), "127.0.0.1:0", cfg).unwrap();
    let mut c =
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(5))
            .unwrap();
    assert_eq!(c.snapshot_info().unwrap().version, 1);

    let next = Arc::new(oracle_gen(3));
    let version = handle.oracle().publish(Arc::clone(&next));
    assert_eq!(version, 2);

    // Same connection, next request: the new generation answers.
    let info = c.snapshot_info().unwrap();
    assert_eq!(info.version, 2);
    assert_eq!(info.checksum, next.checksum());
    let probe = 0x0a00_0103;
    let truth = next.lookup(probe, 950, 950).unwrap();
    let ans = c.query(probe, 950, 950).unwrap();
    assert_eq!(ans.timeout_bits, truth.timeout_bits);
    assert_eq!(ans.status, truth.status);

    handle.shutdown();
    handle.join();
}
