//! End-to-end oracle service test: a simulated campaign becomes a
//! snapshot, the snapshot is served over TCP, and concurrent clients must
//! receive answers that byte-match the offline analysis. Also pins the
//! determinism contract: the metrics JSON export is byte-identical across
//! shard counts.

use beware::analysis::percentile::LatencySamples;
use beware::analysis::pipeline::{run_pipeline, PipelineCfg};
use beware::analysis::recommend::recommend_timeout;
use beware::analysis::timeout_table::TimeoutTable;
use beware::netsim::scenario::{Scenario, ScenarioCfg, VANTAGES};
use beware::probe::prelude::*;
use beware::serve::proto;
use beware::serve::{build_snapshot, server, Client, Message, Oracle, SnapshotCfg, Status};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Simulated campaign → filtered per-address samples.
fn campaign_samples() -> BTreeMap<u32, LatencySamples> {
    let sc =
        Scenario::new(ScenarioCfg { year: 2015, seed: 11, total_blocks: 48, vantage: VANTAGES[0] });
    let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).take(12).collect();
    let cfg = SurveyCfg { blocks, rounds: 10, seed: 11, ..Default::default() };
    let mut world = sc.build_world();
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut world);
    run_pipeline(&records, &PipelineCfg::default()).samples
}

fn serve_cfg(shards: usize) -> server::ServerCfg {
    server::ServerCfg::builder()
        .shards(shards)
        .idle_timeout(Duration::from_secs(30))
        .metrics(true)
        .build()
        .unwrap()
}

#[test]
fn served_answers_bit_match_offline_analysis() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    assert!(!snap.entries.is_empty(), "campaign produced no per-prefix tables");
    let oracle = Arc::new(Oracle::from_snapshot(snap.clone()).unwrap());

    let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(4)).unwrap();
    let addr = handle.local_addr();

    // The offline truth: the global fallback must equal recommend_timeout
    // over the full sample set, and each prefix's cells must equal a
    // TimeoutTable computed over just that prefix's addresses.
    let addr_levels: Vec<f64> =
        snap.address_pct_tenths.iter().map(|&t| f64::from(t) / 10.0).collect();
    let ping_levels: Vec<f64> = snap.ping_pct_tenths.iter().map(|&t| f64::from(t) / 10.0).collect();
    let offline_grid = TimeoutTable::compute_at(&samples, &addr_levels, &ping_levels).unwrap();

    // ≥ 4 concurrent clients, each checking a different slice of the
    // query space against the offline computation.
    let mut workers = Vec::new();
    for w in 0..4usize {
        let samples = samples.clone();
        let snap = snap.clone();
        let grid = offline_grid.clone();
        workers.push(std::thread::spawn(move || {
            let mut client =
                Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2))
                    .unwrap();
            let levels = snap.address_pct_tenths.clone();
            for (ri, &r) in levels.iter().enumerate() {
                for (ci, &c) in levels.iter().enumerate() {
                    if (ri + ci) % 4 != w {
                        continue;
                    }
                    // Fallback answer == recommend_timeout over everyone.
                    let ans = client.query(0xc633_6401, r, c).unwrap();
                    assert_eq!(ans.status, Status::Fallback);
                    let offline =
                        recommend_timeout(&samples, f64::from(r) / 10.0, f64::from(c) / 10.0)
                            .unwrap();
                    assert_eq!(
                        ans.timeout_bits,
                        offline.timeout_secs.to_bits(),
                        "fallback ({r},{c})"
                    );
                    assert_eq!(ans.timeout_bits, grid.cells[ri][ci].to_bits());

                    // Exact answers == per-prefix offline tables.
                    for e in snap.entries.iter().step_by(3) {
                        let probe_addr = e.prefix | 1;
                        let ans = client.query(probe_addr, r, c).unwrap();
                        assert_eq!(ans.status, Status::Exact, "{probe_addr:08x}");
                        assert_eq!((ans.prefix, ans.prefix_len), (e.prefix, e.len));
                        let n = snap.ping_pct_tenths.len();
                        assert_eq!(
                            ans.timeout_bits,
                            e.cells[ri * n + ci],
                            "prefix {:08x} ({r},{c})",
                            e.prefix
                        );
                    }
                }
            }
            // Every worker also exercises stats.
            let stats = client.stats().unwrap();
            assert!(stats.queries > 0);
            assert_eq!(stats.queries, stats.hits_exact + stats.hits_fallback);
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }

    let mut client =
        Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2)).unwrap();
    client.shutdown().unwrap();
    let metrics = handle.join();
    assert!(metrics.counter("serve/queries").unwrap() > 0);
}

/// Frame reassembly under pathological delivery: a query dripped one
/// byte per write (each byte its own readiness event for the shard's
/// reactor) must reassemble into exactly the answer a well-formed client
/// gets. This is the wire-level cousin of the fault-injection split
/// tests — here the splits are real TCP segments against the real epoll
/// loop, so it also pins the readiness path's partial-read handling and
/// the new `sched/` wakeup telemetry.
#[test]
fn request_reassembles_from_one_byte_drips() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap).unwrap());
    let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(1)).unwrap();
    let addr = handle.local_addr();

    // The answer of record, via a well-formed client.
    let mut client =
        Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2)).unwrap();
    let truth = client.query(0xc633_6401, 950, 950).unwrap();
    drop(client);

    // The same query, one byte per segment.
    let frame = proto::encode(&Message::Query {
        addr: 0xc633_6401,
        addr_pct_tenths: 950,
        ping_pct_tenths: 950,
    });
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for &b in &frame {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
        // Give the segment time to arrive alone: distinct readiness
        // events, not one coalesced read.
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut buf = Vec::new();
    let mut tmp = [0u8; 256];
    let reply = loop {
        let n = s.read(&mut tmp).expect("server must answer the dripped query");
        assert!(n > 0, "server closed before answering");
        buf.extend_from_slice(&tmp[..n]);
        if let Some((msg, _)) = proto::try_decode(&buf).unwrap() {
            break msg;
        }
    };
    match reply {
        Message::Answer { status, timeout_bits, .. } => {
            assert_eq!(status, truth.status);
            assert_eq!(timeout_bits, truth.timeout_bits, "dripped query answered differently");
        }
        other => panic!("expected an Answer, got {other:?}"),
    }
    drop(s);

    let mut c2 =
        Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2)).unwrap();
    c2.shutdown().unwrap();
    let metrics = handle.join();
    // The readiness loop's scheduling-dependent counters exist in the
    // in-process registry (the JSON export excludes them; see below).
    assert!(metrics.counter("sched/serve/epoll_wakeups").unwrap_or(0) > 0);
    assert!(metrics.render_text().contains("sched/serve/conns_open"));
}

/// The deterministic metric families must not depend on how connections
/// were scheduled across shards: the same client workload against a
/// 1-shard and a 4-shard server must export byte-identical JSON.
#[test]
fn metrics_export_identical_across_shard_counts() {
    let samples = campaign_samples();
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let oracle = Arc::new(Oracle::from_snapshot(snap.clone()).unwrap());

    let run_workload = |shards: usize| -> String {
        let handle = server::start(Arc::clone(&oracle), "127.0.0.1:0", serve_cfg(shards)).unwrap();
        let addr = handle.local_addr();
        // Fixed workload: 3 connections, each with a deterministic set of
        // queries (one bad percentile each to exercise the error path).
        let mut conns = Vec::new();
        for k in 0..3u32 {
            let mut client =
                Client::connect_retry(addr, Duration::from_secs(5), Duration::from_secs(2))
                    .unwrap();
            for i in 0..40u32 {
                let a = 0x0a00_0000 ^ (i.wrapping_mul(2654435761) ^ k);
                client.query(a, 950, 950).unwrap();
            }
            assert!(client.query(1, 123, 950).is_err());
            conns.push(client);
        }
        conns[0].stats().unwrap();
        conns[1].shutdown().unwrap();
        handle.join().to_json()
    };

    let single = run_workload(1);
    let sharded = run_workload(4);
    assert_eq!(single, sharded, "metrics JSON must be shard-count-invariant");
    assert!(single.contains("serve/queries"));
    assert!(single.contains("serve/errors_unsupported_pct"));
    // Scheduling-dependent families must stay out of the export.
    assert!(!single.contains("sched/"));
    assert!(!single.contains("walltime/"));
}
