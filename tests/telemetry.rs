//! End-to-end telemetry contracts: `beware campaign --metrics` must write
//! byte-identical JSON for any `--threads` value, the file must cover the
//! netsim / probe / pipeline metric families, and `beware metrics` must
//! pretty-print it. See DESIGN.md §7 for the schema and merge semantics.

use beware::telemetry::{Metric, Registry};

fn run_campaign(out_dir: &std::path::Path, metrics: &std::path::Path, threads: u32) {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_beware"))
        .args(["campaign", "--threads", &threads.to_string()])
        .args(["--blocks", "48", "--survey-blocks", "12", "--rounds", "12", "--scans", "4"])
        .arg("--metrics")
        .arg(metrics)
        .arg("--out")
        .arg(out_dir)
        .status()
        .expect("campaign runs");
    assert!(status.success(), "campaign --threads {threads} failed");
}

/// The determinism contract of DESIGN.md §7: per-task registries merge in
/// fixed task order, so the metrics file is byte-identical no matter how
/// the tasks were scheduled.
#[test]
fn metrics_json_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("beware-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("temp dir");
    let m1 = base.join("metrics1.json");
    let m4 = base.join("metrics4.json");
    run_campaign(&base.join("out1"), &m1, 1);
    run_campaign(&base.join("out4"), &m4, 4);

    let json1 = std::fs::read_to_string(&m1).expect("metrics file written");
    let json4 = std::fs::read_to_string(&m4).expect("metrics file written");
    assert_eq!(json1, json4, "--metrics output differs between --threads 1 and 4");

    // The snapshot must cover all three instrumented layers.
    let reg = Registry::from_json(&json1).expect("valid telemetry JSON");
    for family in ["netsim/", "probe/", "pipeline/"] {
        assert!(
            reg.iter().any(|(name, _)| name.starts_with(family)),
            "no {family} metrics in campaign snapshot"
        );
    }
    // Wall-clock must NOT leak into the deterministic file.
    assert!(
        reg.iter().all(|(name, _)| !name.starts_with("walltime/")),
        "nondeterministic walltime/ metrics in JSON output"
    );

    // Spot-check cross-layer consistency: every engine probe is a world
    // probe, and the pipeline ran once per survey.
    let netsim_probes = reg.counter("netsim/probes").expect("netsim/probes");
    let survey_probes = reg.counter("probe/survey/probes_sent").expect("survey counter");
    let zmap_probes = reg.counter("probe/zmap/probes_sent").expect("zmap counter");
    assert_eq!(netsim_probes, survey_probes + zmap_probes);
    assert_eq!(reg.counter("pipeline/runs"), Some(2), "one pipeline run per survey");
    match reg.get("pipeline/match/latency_s") {
        Some(Metric::Histogram(h)) => {
            assert_eq!(Some(h.count), reg.counter("pipeline/match/delayed"));
        }
        None => {} // legitimately absent if no response was delayed
        other => panic!("pipeline/match/latency_s has wrong kind: {other:?}"),
    }

    // Round-trip: parse + re-render is byte-stable.
    assert_eq!(reg.to_json(), json1);
    std::fs::remove_dir_all(&base).ok();
}

/// `beware metrics --in` renders the snapshot for humans: every family
/// header present, no JSON syntax leaking through.
#[test]
fn metrics_command_renders_snapshot() {
    let base = std::env::temp_dir().join(format!("beware-telemetry-render-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("temp dir");
    let m = base.join("metrics.json");
    run_campaign(&base.join("out"), &m, 2);

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_beware"))
        .arg("metrics")
        .arg("--in")
        .arg(&m)
        .output()
        .expect("metrics command runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    for needle in ["netsim/probes", "probe/survey/probes_sent", "pipeline/runs"] {
        assert!(text.contains(needle), "`beware metrics` output missing {needle}:\n{text}");
    }
    std::fs::remove_dir_all(&base).ok();
}
