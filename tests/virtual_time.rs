//! Virtual-time suite: the paper's surprisingly high delays — 5 s tails,
//! 145 s stalls — replayed against the timeout stack in milliseconds of
//! wall clock. Every test here injects a
//! [`VirtualClock`](beware::runtime::VirtualClock) and exercises a
//! timeout path that would otherwise cost minutes of real waiting: a
//! multi-minute chaos delay schedule, the server's hour-scale idle
//! eviction, the shutdown drain deadline against a peer that never
//! reads, client poisoning after a simulated `read_timeout`, and the
//! connect-retry deadline. No test sleeps for real; CI runs the whole
//! file under a tight wall-clock budget to keep it that way
//! (see `.github/workflows/ci.yml`).

use beware::analysis::percentile::LatencySamples;
use beware::faultsim::{FaultCfg, FaultyTransport};
use beware::runtime::{Clock, VirtualClock};
use beware::serve::proto;
use beware::serve::{
    build_snapshot, server, Client, ClientError, Message, Oracle, SnapshotCfg, Status,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// In-memory loopback transport: writes append, reads pop.
#[derive(Debug, Default)]
struct Loopback(VecDeque<u8>);

impl Write for Loopback {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.extend(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for Loopback {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.0.len());
        for b in buf.iter_mut().take(n) {
            *b = self.0.pop_front().unwrap();
        }
        Ok(n)
    }
}

/// A small hand-built snapshot — enough structure for the server to
/// answer fallback queries, cheap enough to build per test.
fn tiny_oracle() -> Arc<Oracle> {
    let mut samples = BTreeMap::new();
    for i in 0..8u32 {
        samples.insert(
            0x0a00_0100 + i,
            LatencySamples::from_values(vec![0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0]),
        );
    }
    let snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    Arc::new(Oracle::from_snapshot(snap).unwrap())
}

/// Pump 256-byte writes through a delay-everything fault schedule until
/// more than 145 s of simulated delay have accumulated, then read it all
/// back (reads delay too). Returns the rendered fault counters, the
/// final virtual time and the write count — everything a replay must
/// reproduce byte for byte.
fn run_delay_schedule(seed: u64, stream: u64) -> (String, Duration, usize) {
    let vc = VirtualClock::new();
    let cfg = FaultCfg { delay_prob: 1.0, max_delay_ms: 2000, ..FaultCfg::disabled(seed) };
    let mut t = FaultyTransport::with_clock(Loopback::default(), cfg, stream, vc.handle());
    let payload = [0x5au8; 256];
    let mut writes = 0usize;
    while vc.now() <= Duration::from_secs(145) {
        let mut sent = 0;
        while sent < payload.len() {
            sent += t.write(&payload[sent..]).expect("a delay-only schedule never fails");
        }
        writes += 1;
        assert!(writes < 100_000, "schedule never accumulated 145 s of virtual delay");
    }
    let mut got = 0usize;
    let mut buf = [0u8; 512];
    loop {
        match t.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => panic!("a delay-only schedule never fails reads: {e}"),
        }
    }
    assert_eq!(got, writes * payload.len(), "delays must not lose bytes");
    let (_, reg) = t.into_parts();
    (reg.render_text(), vc.now(), writes)
}

/// The headline act: seeded fault schedules spanning 145+ simulated
/// seconds each replay in milliseconds, byte-identically — across runs
/// and across serial vs. one-thread-per-schedule execution.
#[test]
fn long_chaos_schedules_replay_identically_without_wall_time() {
    let wall = Instant::now();
    let params: Vec<(u64, u64)> = (0..4).map(|s| (0xD1CE ^ s, s)).collect();

    let serial: Vec<_> =
        params.iter().map(|&(seed, stream)| run_delay_schedule(seed, stream)).collect();
    let rerun: Vec<_> =
        params.iter().map(|&(seed, stream)| run_delay_schedule(seed, stream)).collect();
    let threaded: Vec<_> = params
        .iter()
        .map(|&(seed, stream)| std::thread::spawn(move || run_delay_schedule(seed, stream)))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("schedule thread panicked"))
        .collect();

    assert_eq!(serial, rerun, "same seeds must replay byte-identically");
    assert_eq!(serial, threaded, "thread count must not change a schedule");
    for (text, vtime, writes) in &serial {
        assert!(*vtime > Duration::from_secs(145), "only {vtime:?} simulated");
        assert!(*writes > 0);
        assert!(text.contains("faults/injected/delays"), "delays went uncounted:\n{text}");
    }
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "12 simulated multi-minute schedules took {:?} of wall clock",
        wall.elapsed()
    );
}

/// An hour-long idle timeout fires in milliseconds: the shard loop's
/// virtual naps carry the clock past the wheel deadline and the silent
/// connection is evicted — bounded listen, with no real hour anywhere.
#[test]
fn idle_eviction_fires_after_a_virtual_hour() {
    let vc = VirtualClock::with_min_step(Duration::from_millis(100));
    let cfg = server::ServerCfg::builder()
        .shards(1)
        .idle_timeout(Duration::from_secs(3600))
        .drain_timeout(Duration::from_secs(5))
        .metrics(true)
        .clock(vc.handle())
        .build()
        .unwrap();
    let handle = server::start(tiny_oracle(), "127.0.0.1:0", cfg).unwrap();

    // Connect and go silent. The server must give up on us.
    let s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut buf = [0u8; 8];
    match (&s).read(&mut buf) {
        Ok(0) => {}
        Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
        Ok(n) => panic!("server sent {n} unsolicited bytes"),
        Err(e) => panic!("never evicted: read ended with {e} instead of a close"),
    }
    assert!(
        vc.now() >= Duration::from_secs(3600),
        "evicted after only {:?} of virtual time",
        vc.now()
    );

    handle.shutdown();
    let metrics = handle.join();
    assert_eq!(metrics.counter("sched/serve/idle_closed"), Some(1));
    drop(s);
}

/// The shutdown drain deadline measured on the virtual clock: a peer
/// that floods queries and never reads a reply leaves a backlog that can
/// never drain, so `join` must return only because 200 virtual seconds
/// elapsed — not because the peer relented (it never does), and without
/// waiting 200 real seconds.
#[test]
fn shutdown_drain_deadline_elapses_in_virtual_time() {
    let vc = VirtualClock::with_min_step(Duration::from_millis(100));
    let cfg = server::ServerCfg::builder()
        .shards(1)
        .idle_timeout(Duration::from_secs(7200))
        .drain_timeout(Duration::from_secs(200))
        .out_queue_cap(256 << 20)
        .metrics(true)
        .clock(vc.handle())
        .reactor(server::ReactorKind::Auto)
        .build()
        .unwrap();
    let handle = server::start(tiny_oracle(), "127.0.0.1:0", cfg).unwrap();

    // Flood 32 MiB of frame-aligned queries, never reading a reply: the
    // replies overflow both socket buffers and pile into the (huge here)
    // output queue, guaranteeing a backlog when shutdown arrives.
    let s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_nonblocking(true).unwrap();
    let frame = proto::encode(&Message::Query {
        addr: 0x0a00_0001,
        addr_pct_tenths: 950,
        ping_pct_tenths: 950,
    });
    let burst: Vec<u8> = frame.iter().copied().cycle().take(frame.len() * 4800).collect();
    let (mut sent, mut off) = (0usize, 0usize);
    let flood_t0 = Instant::now();
    while sent < 32 << 20 {
        assert!(
            flood_t0.elapsed() < Duration::from_secs(30),
            "server stopped consuming the flood after {sent} bytes"
        );
        match (&s).write(&burst[off..]) {
            Ok(0) => panic!("flood socket wedged"),
            Ok(n) => {
                sent += n;
                off = (off + n) % burst.len();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("flood connection died early: {e}"),
        }
    }

    let t_shutdown = vc.now();
    handle.shutdown();
    let metrics = handle.join();
    let drained_for = vc.now().saturating_sub(t_shutdown);
    assert!(
        drained_for >= Duration::from_secs(200),
        "join returned after only {drained_for:?} of virtual drain — \
         the deadline cannot have fired"
    );
    assert!(
        metrics.counter("faults/serve/write_backpressure").unwrap_or(0) > 0,
        "the stalled peer never exerted backpressure — nothing was drained against"
    );
    assert!(metrics.counter("serve/queries").unwrap_or(0) > 0);
    drop(s);
}

/// Scripted in-memory oracle: every request written is answered with one
/// canned `Answer` frame; flipping `fail_reads` makes the next read fail
/// the way a socket `read_timeout` does.
#[derive(Debug)]
struct ScriptedOracle {
    replies: VecDeque<u8>,
    answer: Vec<u8>,
    fail_reads: Arc<AtomicBool>,
}

impl Write for ScriptedOracle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.replies.extend(self.answer.iter());
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for ScriptedOracle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.fail_reads.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "scripted read_timeout"));
        }
        let n = buf.len().min(self.replies.len());
        for b in buf.iter_mut().take(n) {
            *b = self.replies.pop_front().unwrap();
        }
        Ok(n)
    }
}

/// The client rides out 145+ simulated seconds of injected delay without
/// consuming wall time, then a simulated `read_timeout` poisons the
/// connection exactly as a real one would: the failing call is a typed
/// `Io` error, every later call is `Poisoned`.
#[test]
fn client_survives_virtual_delays_then_poisons_on_timeout() {
    let wall = Instant::now();
    let vc = VirtualClock::new();
    let fail_reads = Arc::new(AtomicBool::new(false));
    let inner = ScriptedOracle {
        replies: VecDeque::new(),
        answer: proto::encode(&Message::Answer {
            status: Status::Fallback,
            timeout_bits: 5.0f64.to_bits(),
            prefix: 0,
            prefix_len: 0,
        }),
        fail_reads: Arc::clone(&fail_reads),
    };
    let cfg = FaultCfg { delay_prob: 1.0, max_delay_ms: 150_000, ..FaultCfg::disabled(0xbe0a) };
    let mut client =
        Client::from_transport(FaultyTransport::with_clock(inner, cfg, 0, vc.handle()));

    // Each round-trip eats several uniform(1..=150 s) injected delays;
    // keep querying until the schedule has cost more than the paper's
    // worst observed stall.
    let mut queries = 0usize;
    while vc.now() <= Duration::from_secs(145) {
        let ans = client.query(0x0a00_0001, 950, 950).expect("scripted oracle always answers");
        assert_eq!(ans.timeout_bits, 5.0f64.to_bits());
        queries += 1;
        assert!(queries < 100_000, "delays never accumulated 145 s");
    }
    assert!(!client.is_poisoned(), "slow is not broken: delays alone must not poison");

    fail_reads.store(true, Ordering::Relaxed);
    match client.query(0x0a00_0001, 950, 950) {
        Err(ClientError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
        other => panic!("expected the scripted timeout, got {other:?}"),
    }
    assert!(client.is_poisoned());
    match client.query(0x0a00_0001, 950, 950) {
        Err(ClientError::Poisoned) => {}
        other => panic!("expected Poisoned on reuse, got {other:?}"),
    }
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "145+ simulated seconds cost {:?} of wall clock",
        wall.elapsed()
    );
}

/// `connect_retry`'s deadline arithmetic on a virtual clock: five
/// virtual minutes of refused connections resolve in well under five
/// real seconds, and the deadline is honored before the error surfaces.
#[test]
fn connect_retry_waits_out_a_virtual_deadline_instantly() {
    // A bound-then-dropped port refuses (almost certainly) every connect.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let vc = VirtualClock::with_min_step(Duration::from_secs(1));
    let clock = vc.handle();
    let wall = Instant::now();
    let out = Client::connect_retry_with_clock(
        addr,
        Duration::from_secs(1),
        Duration::from_secs(300),
        &clock,
    );
    assert!(out.is_err(), "nothing listens on a dropped port");
    assert!(
        vc.now() >= Duration::from_secs(300),
        "gave up after only {:?} of virtual time",
        vc.now()
    );
    assert!(
        wall.elapsed() < Duration::from_secs(5),
        "a 300 s virtual deadline cost {:?} of wall clock",
        wall.elapsed()
    );
}

/// A wheel-scheduled snapshot reload: `reload_poll` arms a deadline on
/// the shard's wheel, and the shard's virtual naps carry the clock past
/// it — the source file is picked up and hot-swapped after ten *virtual*
/// minutes, with zero real sleeps anywhere in server or test.
#[test]
fn scheduled_reload_fires_through_the_wheel_in_virtual_time() {
    let vc = VirtualClock::with_min_step(Duration::from_millis(100));
    // The file the poller watches holds a different snapshot than the
    // one served at boot, so the first poll that fires must swap.
    let mut samples = BTreeMap::new();
    for i in 0..8u32 {
        samples.insert(
            0x0a00_0200 + i,
            LatencySamples::from_values(vec![0.02, 0.04, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0]),
        );
    }
    let next_snap = build_snapshot(&samples, &SnapshotCfg::default()).unwrap();
    let source = std::env::temp_dir().join(format!("beware-vt-reload-{}.bwts", std::process::id()));
    let mut buf = Vec::new();
    beware::dataset::snapshot::write_snapshot(&mut buf, &next_snap).unwrap();
    std::fs::write(&source, buf).unwrap();

    let cfg = server::ServerCfg::builder()
        .shards(1)
        .idle_timeout(Duration::from_secs(7200))
        .metrics(true)
        .clock(vc.handle())
        .reload_from(&source)
        .reload_poll(Duration::from_secs(600))
        .build()
        .unwrap();
    let handle = server::start(tiny_oracle(), "127.0.0.1:0", cfg).unwrap();
    let connect = || {
        Client::connect_retry(handle.local_addr(), Duration::from_secs(5), Duration::from_secs(5))
            .unwrap()
    };
    let mut client = connect();
    assert_eq!(client.snapshot_info().unwrap().version, 1);

    let wall = Instant::now();
    let info = loop {
        match client.snapshot_info() {
            Ok(info) if info.version >= 2 => break info,
            Ok(_) => {}
            // Idle eviction can beat a request when virtual time leaps;
            // a fresh connection sees the same swapped oracle.
            Err(_) => client = connect(),
        }
        assert!(
            wall.elapsed() < Duration::from_secs(30),
            "ten virtual minutes never elapsed; the scheduled reload never fired"
        );
        std::thread::yield_now();
    };
    assert_eq!(info.checksum, beware::dataset::snapshot::snapshot_checksum(&next_snap));
    assert!(
        vc.now() >= Duration::from_secs(600),
        "poll fired after only {:?} of virtual time",
        vc.now()
    );
    assert!(
        wall.elapsed() < Duration::from_secs(30),
        "a 10-minute poll period cost {:?} of wall clock",
        wall.elapsed()
    );

    handle.shutdown();
    let metrics = handle.join();
    std::fs::remove_file(&source).ok();
    assert!(metrics.counter("sched/serve/reload_polls").unwrap_or(0) >= 1, "wheel never ticked");
    assert_eq!(metrics.counter("oracle/reloads"), Some(1), "exactly one content change");
}
