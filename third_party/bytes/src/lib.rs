//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of `bytes` 1.x the dataset codecs use: [`Buf`] implemented
//! for `&[u8]` and [`BufMut`] implemented for `Vec<u8>`, little-endian
//! integer accessors only. Reads panic on underflow, exactly like the real
//! crate's `Buf` — callers are expected to have length-checked their
//! slices (the codecs read into fixed scratch buffers first).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read cursor over a byte source; implemented for `&[u8]`, advancing the
/// slice in place as values are taken.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Take the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Take one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Take a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Take a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Take a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for encoded bytes; implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xab);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(0x0123_4567_89ab_cdef);
        out.put_slice(b"xyz");
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
