//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of criterion 0.5 the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed in
//! growing batches until a fixed wall-clock budget is spent; the reported
//! number is the median per-iteration time across batches. No statistical
//! analysis, plots, or baseline storage — output is one line per benchmark
//! on stdout. Command-line arguments are treated as substring filters on
//! benchmark names, like the real harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are amortized in [`Bencher::iter_batched`].
/// The stand-in times every call individually, so the variants only hint
/// at batch sizing and are otherwise equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small cheap inputs.
    SmallInput,
    /// Large inputs whose setup cost rivals the routine.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Accumulated measured time across timed iterations.
    elapsed: Duration,
    /// Number of timed iterations contributing to `elapsed`.
    iters: u64,
    /// How many iterations the harness asks for in this pass.
    budget: u64,
}

impl Bencher {
    /// Time `routine` for this pass's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.budget {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.budget;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    filters: Vec<String>,
    /// Wall-clock measurement budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Everything after a `--` separator (cargo bench passes one) that
        // is not a flag is a name filter, matching real criterion's CLI.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters, measure_for: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Configure the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure_for = d;
        self
    }

    /// Run one benchmark if it passes the CLI name filter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|s| name.contains(s.as_str())) {
            return self;
        }
        // Calibration pass: find how many iterations fit ~10ms.
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, budget: 1 };
        f(&mut b);
        let per_iter = if b.iters > 0 && !b.elapsed.is_zero() {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        } else {
            Duration::from_nanos(1)
        };
        let per_pass = Duration::from_millis(10).as_nanos();
        let budget = (per_pass / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        // Measurement passes: per-pass medians over the time budget.
        let mut pass_times: Vec<f64> = Vec::new();
        let deadline = Instant::now() + self.measure_for;
        while Instant::now() < deadline || pass_times.len() < 3 {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, budget };
            f(&mut b);
            if b.iters > 0 {
                pass_times.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if pass_times.len() >= 200 {
                break;
            }
        }
        pass_times.sort_by(|a, b| a.total_cmp(b));
        let median = pass_times[pass_times.len() / 2];
        println!("{:<44} time: [{}]", name, format_time(median));
        self
    }

    /// No-op in the stand-in; real criterion writes reports here.
    pub fn final_summary(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_filters() {
        let mut c = Criterion { filters: vec![], measure_for: Duration::from_millis(5) };
        let mut hits = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        let mut filtered =
            Criterion { filters: vec!["nomatch".into()], measure_for: Duration::from_millis(5) };
        filtered.bench_function("smoke/skipped", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        assert_eq!(hits, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(3.2e-9).ends_with("ns"));
        assert!(format_time(4.5e-5).ends_with("µs"));
        assert!(format_time(0.012).ends_with("ms"));
        assert!(format_time(2.5).ends_with(" s"));
    }
}
