//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of proptest 1.x the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, `option::of`, `sample::Index`, the `proptest!` test
//! macro with optional `proptest_config`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case panics with its assertion message
//!   and the case number, but is not minimized;
//! * **uniform generation** — no edge-case biasing toward zero/extremes;
//! * each test's random stream is a pure function of its name, so runs are
//!   fully reproducible without a persistence file.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Rejection marker returned by `prop_assume!` through the generated test
/// closure: the case is skipped, not failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject;

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulation-heavy suites
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The randomness source strategies draw from.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Deterministic generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { rng: StdRng::seed_from_u64(h) }
    }

    /// Next 64 uniform bits.
    pub fn bits(&mut self) -> u64 {
        self.rng.gen::<u64>()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// A generator of values of one type. Upstream proptest separates
/// strategies from value trees to support shrinking; without shrinking the
/// strategy alone suffices.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide magnitude range.
        let mag = rng.unit() * 600.0 - 300.0;
        let sign = if rng.bits() & 1 == 1 { 1.0 } else { -1.0 };
        sign * mag.exp2()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.bits() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "inverted range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.bits() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "inverted range strategy");
        // Include the endpoint: scale by the closed unit interval.
        let u = rng.bits() as f64 / u64::MAX as f64;
        start + (end - start) * u
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    parts: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Build a [`Union`]; used by the `prop_oneof!` expansion.
pub fn union<T>(parts: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!parts.is_empty(), "prop_oneof! needs at least one alternative");
    Union { parts }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.parts.len());
        self.parts[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability 3/4 (matching upstream's default weight),
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `[0, len)`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.bits())
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            // Rejection cap mirrors upstream's spirit: give up on
            // pathological assume-rates rather than spinning forever.
            while passed < cfg.cases && attempts < cfg.cases.saturating_mul(64) {
                attempts += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let case = move || -> ::core::result::Result<(), $crate::Reject> {
                    $body
                    ::core::result::Result::Ok(())
                };
                match case() {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::Reject) => {}
                }
            }
            assert!(
                passed > 0,
                "proptest {}: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u32..10, b in 0.0f64..=1.0, c in -4i64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!((-4..=4).contains(&c));
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn vec_sizes_in_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_rejects(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn exact_size_vec_and_index() {
        let mut rng = crate::TestRng::for_test("exact");
        let s = crate::collection::vec(any::<u32>(), 32);
        assert_eq!(crate::Strategy::generate(&s, &mut rng).len(), 32);
        let idx = <crate::sample::Index as crate::Arbitrary>::arbitrary(&mut rng);
        for len in [1usize, 2, 100] {
            assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let gen = || {
            let mut rng = crate::TestRng::for_test("fixed");
            crate::Strategy::generate(&(0u64..u64::MAX), &mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
