//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` 0.8 it actually uses: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! behind `StdRng` is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of upstream `rand`, so sampled values differ from upstream,
//! but every guarantee the workspace relies on holds: the stream is fully
//! determined by the seed, uniform, and fast.
//!
//! Anything outside this subset is deliberately absent; if new code needs
//! more of the `rand` API, extend this crate rather than adding an
//! unfetchable dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random generator seedable from a `u64`, mirroring
/// `rand::SeedableRng`'s one method this workspace calls.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seeding finalizer for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw one value from `rng`'s uniform stream.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts, mirroring `rand`'s
/// `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or inverted range");
        let u = f64::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "inverted range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias at 64-bit span is < 2^-64 per
/// draw, far below anything the simulations can observe).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// The user-facing generator API: `rand::Rng`'s methods this workspace
/// calls, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f64` in `[0,1)`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream `rand` — values differ from upstream —
    /// but seeded, uniform, and with a 2^256-1 period.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// The one `rand::seq::SliceRandom` method the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Every value of a small range appears.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to identity");
    }
}
